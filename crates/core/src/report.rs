//! Reports produced by the pipeline.

use std::fmt;
use std::time::Duration;

use df_igoodlock::{AbstractCycle, Cycle, IGoodlockStats};
use df_runtime::{DeadlockWitness, Outcome};
use serde::{Deserialize, Serialize};

/// Result of Phase I: one observed execution + iGoodlock.
#[derive(Clone, Debug)]
pub struct Phase1Report {
    /// Potential deadlock cycles with concrete ids (Phase I execution).
    pub cycles: Vec<Cycle>,
    /// The same cycles in abstract, execution-independent form.
    pub abstract_cycles: Vec<AbstractCycle>,
    /// iGoodlock search statistics.
    pub stats: IGoodlockStats,
    /// Size of the (deduplicated) lock dependency relation.
    pub relation_size: usize,
    /// Number of first-acquisition events observed.
    pub acquires_observed: usize,
    /// Wall-clock time of the instrumented execution + analysis.
    pub duration: Duration,
    /// Outcome of the observation run (usually `Completed`; the paper
    /// notes Phase I may itself stumble into a deadlock).
    pub run_outcome: Outcome,
    /// The observed trace — owns the object table that the concrete
    /// [`Cycle`]s reference, so callers can re-abstract cycles under
    /// other [`df_abstraction::AbstractionMode`]s.
    pub trace: df_events::Trace,
}

impl Phase1Report {
    /// Number of potential deadlock cycles reported.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }
}

impl fmt::Display for Phase1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "iGoodlock: {} potential deadlock cycle(s) from {} dependency tuple(s) in {:?}",
            self.cycles.len(),
            self.relation_size,
            self.duration
        )?;
        for (i, c) in self.abstract_cycles.iter().enumerate() {
            writeln!(f, "  cycle {}: {}", i + 1, c)?;
        }
        Ok(())
    }
}

/// Result of a single Phase II execution against one target cycle.
#[derive(Clone, Debug)]
pub struct Phase2Report {
    /// The run's outcome.
    pub outcome: Outcome,
    /// The witnessed deadlock, if any.
    pub witness: Option<DeadlockWitness>,
    /// Whether the witnessed deadlock matches the target cycle (up to
    /// rotation) under the configured abstraction. A deadlock that does
    /// not match is still a real deadlock — the paper observed this on the
    /// Collections benchmarks ("created a deadlock which was different
    /// from the potential deadlock cycle provided as input").
    pub matched_target: bool,
    /// Thrashings during the run (Table 1, column 10).
    pub thrashes: u64,
    /// Threads paused at least once.
    pub pauses: u64,
    /// §4 yields injected.
    pub yields: u64,
    /// Schedule points executed.
    pub steps: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// The run's trace — feed it to
    /// [`crate::DeadlockFuzzer::replay`] to re-execute this exact
    /// schedule (e.g. to step through a witnessed deadlock).
    pub trace: df_events::Trace,
}

impl Phase2Report {
    /// Whether a real deadlock (any) was created.
    pub fn deadlocked(&self) -> bool {
        self.witness.is_some()
    }
}

/// Aggregate of repeated Phase II trials for one cycle — one row of the
/// paper's probability experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbabilityReport {
    /// Trials run.
    pub trials: u32,
    /// Trials that created any real deadlock.
    pub deadlocks: u32,
    /// Trials whose deadlock matched the target cycle.
    pub matched: u32,
    /// Empirical probability of creating a deadlock
    /// (`deadlocks / trials`; Table 1 column 9).
    pub probability: f64,
    /// Mean thrashings per run (Table 1 column 10).
    pub avg_thrashes: f64,
    /// Mean schedule points per run.
    pub avg_steps: f64,
    /// Mean wall-clock duration per run.
    pub avg_duration: Duration,
}

impl fmt::Display for ProbabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock probability {:.2} ({} of {} runs, {} matching target), avg thrashes {:.2}",
            self.probability, self.deadlocks, self.trials, self.matched, self.avg_thrashes
        )
    }
}

/// One confirmed (or unconfirmed) cycle in a full pipeline run.
#[derive(Clone, Debug)]
pub struct CycleConfirmation {
    /// Index into [`Phase1Report::abstract_cycles`].
    pub cycle_index: usize,
    /// The target cycle.
    pub cycle: AbstractCycle,
    /// Trial aggregate.
    pub probability: ProbabilityReport,
    /// Whether at least one trial reproduced this cycle (DeadlockFuzzer's
    /// "confirmed real deadlock" verdict — never a false positive).
    pub confirmed: bool,
}

/// Result of the full two-phase pipeline on one program.
#[derive(Clone, Debug)]
pub struct Report {
    /// Program name.
    pub program: String,
    /// Phase I results.
    pub phase1: Phase1Report,
    /// Per-cycle Phase II confirmations.
    pub confirmations: Vec<CycleConfirmation>,
}

impl Report {
    /// Number of cycles confirmed as real deadlocks.
    pub fn confirmed_count(&self) -> usize {
        self.confirmations.iter().filter(|c| c.confirmed).count()
    }

    /// Cycles reported by iGoodlock.
    pub fn potential_count(&self) -> usize {
        self.phase1.cycle_count()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== DeadlockFuzzer report: {} ===", self.program)?;
        write!(f, "{}", self.phase1)?;
        for c in &self.confirmations {
            writeln!(
                f,
                "  cycle {}: {} — {}",
                c.cycle_index + 1,
                if c.confirmed { "CONFIRMED" } else { "not reproduced" },
                c.probability
            )?;
        }
        writeln!(
            f,
            "confirmed {} of {} potential cycles",
            self.confirmed_count(),
            self.potential_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_report_display() {
        let p = ProbabilityReport {
            trials: 100,
            deadlocks: 99,
            matched: 98,
            probability: 0.99,
            avg_thrashes: 0.0,
            avg_steps: 120.0,
            avg_duration: Duration::from_millis(3),
        };
        let s = p.to_string();
        assert!(s.contains("0.99"));
        assert!(s.contains("99 of 100"));
    }

    #[test]
    fn probability_serde_round_trip() {
        let p = ProbabilityReport {
            trials: 10,
            deadlocks: 5,
            matched: 5,
            probability: 0.5,
            avg_thrashes: 1.5,
            avg_steps: 10.0,
            avg_duration: Duration::from_micros(17),
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ProbabilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trials, 10);
        assert_eq!(back.avg_duration, Duration::from_micros(17));
    }
}
