//! Reports produced by the pipeline.

use std::fmt;
use std::time::Duration;

use df_igoodlock::{AbstractCycle, Cycle, CycleFeasibility, IGoodlockStats};
use df_runtime::{DeadlockWitness, Outcome};
use serde::{Deserialize, Serialize};

/// Coarse classification of one Phase II trial — the campaign-level
/// failure taxonomy.
///
/// A [`df_runtime::Outcome`] carries run-internal detail (witnesses,
/// messages); `TrialOutcome` collapses it to the classes the campaign
/// runner makes decisions on: panicked and timed-out trials are retried
/// with a rotated seed, and every class is counted in
/// [`TrialOutcomes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrialOutcome {
    /// The program ran to completion without deadlocking.
    Completed,
    /// A real deadlock was witnessed (matching the target or not).
    Deadlock,
    /// The run stalled without a lock cycle (join cycle, lost signal).
    Stall,
    /// The program under test panicked.
    ProgramPanic,
    /// The trial exhausted its step budget, hang watchdog, or wall-clock
    /// deadline.
    Timeout,
    /// The harness itself failed (e.g. a strategy abort).
    InternalError,
}

impl TrialOutcome {
    /// Classifies a runtime outcome.
    pub fn classify(outcome: &Outcome) -> Self {
        match outcome {
            Outcome::Completed => TrialOutcome::Completed,
            Outcome::Deadlock(_) => TrialOutcome::Deadlock,
            Outcome::Stall { .. } | Outcome::CommunicationStall { .. } => TrialOutcome::Stall,
            Outcome::ProgramPanic(_) => TrialOutcome::ProgramPanic,
            Outcome::StepLimit | Outcome::Hang | Outcome::DeadlineExceeded => TrialOutcome::Timeout,
            Outcome::StrategyAbort(_) => TrialOutcome::InternalError,
        }
    }

    /// Whether the campaign runner should retry this trial with a rotated
    /// seed: panics, timeouts and internal errors say nothing about the
    /// cycle under test, while completed/deadlock/stall are real verdicts.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TrialOutcome::ProgramPanic | TrialOutcome::Timeout | TrialOutcome::InternalError
        )
    }
}

impl fmt::Display for TrialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrialOutcome::Completed => "completed",
            TrialOutcome::Deadlock => "deadlock",
            TrialOutcome::Stall => "stall",
            TrialOutcome::ProgramPanic => "program-panic",
            TrialOutcome::Timeout => "timeout",
            TrialOutcome::InternalError => "internal-error",
        })
    }
}

/// Per-class trial counts for one confirmation campaign.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TrialOutcomes {
    /// Trials that completed without deadlock.
    pub completed: u32,
    /// Trials that witnessed a real deadlock.
    pub deadlocks: u32,
    /// Trials that stalled without a lock cycle.
    pub stalls: u32,
    /// Trials whose final attempt panicked in program code.
    pub panics: u32,
    /// Trials whose final attempt timed out (steps, hang, or deadline).
    pub timeouts: u32,
    /// Trials whose final attempt failed inside the harness.
    pub internal_errors: u32,
}

impl TrialOutcomes {
    /// Counts one (final-attempt) trial outcome.
    pub fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Completed => self.completed += 1,
            TrialOutcome::Deadlock => self.deadlocks += 1,
            TrialOutcome::Stall => self.stalls += 1,
            TrialOutcome::ProgramPanic => self.panics += 1,
            TrialOutcome::Timeout => self.timeouts += 1,
            TrialOutcome::InternalError => self.internal_errors += 1,
        }
    }

    /// Total trials counted.
    pub fn total(&self) -> u32 {
        self.completed
            + self.deadlocks
            + self.stalls
            + self.panics
            + self.timeouts
            + self.internal_errors
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &TrialOutcomes) {
        self.completed += other.completed;
        self.deadlocks += other.deadlocks;
        self.stalls += other.stalls;
        self.panics += other.panics;
        self.timeouts += other.timeouts;
        self.internal_errors += other.internal_errors;
    }
}

impl fmt::Display for TrialOutcomes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed, {} deadlock, {} stall, {} panic, {} timeout, {} internal",
            self.completed,
            self.deadlocks,
            self.stalls,
            self.panics,
            self.timeouts,
            self.internal_errors
        )
    }
}

/// Result of Phase I: one observed execution + iGoodlock.
#[derive(Clone, Debug)]
pub struct Phase1Report {
    /// Potential deadlock cycles with concrete ids (Phase I execution).
    pub cycles: Vec<Cycle>,
    /// The same cycles in abstract, execution-independent form.
    pub abstract_cycles: Vec<AbstractCycle>,
    /// iGoodlock search statistics.
    pub stats: IGoodlockStats,
    /// Size of the (deduplicated) lock dependency relation.
    pub relation_size: usize,
    /// Number of first-acquisition events observed.
    pub acquires_observed: usize,
    /// Wall-clock time of the instrumented execution + analysis.
    pub duration: Duration,
    /// Outcome of the observation run (usually `Completed`; the paper
    /// notes Phase I may itself stumble into a deadlock).
    pub run_outcome: Outcome,
    /// Feasibility judgement of each cycle, parallel to [`Self::cycles`],
    /// when [`crate::Config::feasibility`] is on (empty otherwise, and
    /// for streamed Phase I, which records no trace to judge from).
    pub feasibility: Vec<CycleFeasibility>,
    /// The observed trace — owns the object table that the concrete
    /// [`Cycle`]s reference, so callers can re-abstract cycles under
    /// other [`df_abstraction::AbstractionMode`]s.
    pub trace: df_events::Trace,
}

impl Phase1Report {
    /// Number of potential deadlock cycles reported.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }
}

impl fmt::Display for Phase1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "iGoodlock: {} potential deadlock cycle(s) from {} dependency tuple(s) in {:?}",
            self.cycles.len(),
            self.relation_size,
            self.duration
        )?;
        for (i, c) in self.abstract_cycles.iter().enumerate() {
            match self.feasibility.get(i) {
                Some(judgement) => writeln!(f, "  cycle {}: {} — {judgement}", i + 1, c)?,
                None => writeln!(f, "  cycle {}: {}", i + 1, c)?,
            }
        }
        Ok(())
    }
}

/// Result of a single Phase II execution against one target cycle.
#[derive(Clone, Debug)]
pub struct Phase2Report {
    /// The run's outcome.
    pub outcome: Outcome,
    /// The witnessed deadlock, if any.
    pub witness: Option<DeadlockWitness>,
    /// Whether the witnessed deadlock matches the target cycle (up to
    /// rotation) under the configured abstraction. A deadlock that does
    /// not match is still a real deadlock — the paper observed this on the
    /// Collections benchmarks ("created a deadlock which was different
    /// from the potential deadlock cycle provided as input").
    pub matched_target: bool,
    /// Thrashings during the run (Table 1, column 10).
    pub thrashes: u64,
    /// Threads paused at least once.
    pub pauses: u64,
    /// §4 yields injected.
    pub yields: u64,
    /// Schedule points executed.
    pub steps: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// The run's trace — feed it to
    /// [`crate::DeadlockFuzzer::replay`] to re-execute this exact
    /// schedule (e.g. to step through a witnessed deadlock).
    pub trace: df_events::Trace,
}

impl Phase2Report {
    /// Whether a real deadlock (any) was created.
    pub fn deadlocked(&self) -> bool {
        self.witness.is_some()
    }

    /// The trial-level classification of this run's outcome.
    pub fn trial_outcome(&self) -> TrialOutcome {
        TrialOutcome::classify(&self.outcome)
    }
}

/// Aggregate of repeated Phase II trials for one cycle — one row of the
/// paper's probability experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbabilityReport {
    /// Trials run.
    pub trials: u32,
    /// Trials that created any real deadlock.
    pub deadlocks: u32,
    /// Trials whose deadlock matched the target cycle.
    pub matched: u32,
    /// Empirical probability of reproducing the *target* cycle
    /// (`matched / trials`) — the quantity confirmation keys on.
    ///
    /// Historical note: this field used to be `deadlocks / trials`, which
    /// on multi-cycle programs could report `1.0` for a cycle that never
    /// matched (every trial deadlocked — on a *different* cycle). That
    /// any-deadlock rate now lives in [`Self::deadlock_rate`].
    pub probability: f64,
    /// Empirical probability of creating *any* real deadlock
    /// (`deadlocks / trials`; Table 1 column 9 counts deadlocks, matched
    /// or not).
    pub deadlock_rate: f64,
    /// Whether the campaign was truncated by
    /// [`crate::Config::stop_on_first`] before running every requested
    /// trial. A truncated `probability` is a biased estimate (the
    /// campaign stops on success), so consumers that feed estimators —
    /// the adaptive allocator above all — must reject it.
    pub truncated: bool,
    /// Mean thrashings per run (Table 1 column 10).
    pub avg_thrashes: f64,
    /// Mean threads paused per run.
    pub avg_pauses: f64,
    /// Mean §4 yields injected per run.
    pub avg_yields: f64,
    /// Mean schedule points per run.
    pub avg_steps: f64,
    /// Mean wall-clock duration per run.
    pub avg_duration: Duration,
    /// Per-class counts of the final attempt of every trial.
    pub outcomes: TrialOutcomes,
    /// Retries spent on panicked/timed-out attempts (each trial retries at
    /// most [`crate::Config::trial_retries`] times with a rotated seed).
    pub retries: u32,
}

impl Default for ProbabilityReport {
    /// A zero-trial placeholder, used when a confirmation campaign failed
    /// before producing any trials.
    fn default() -> Self {
        ProbabilityReport {
            trials: 0,
            deadlocks: 0,
            matched: 0,
            probability: 0.0,
            deadlock_rate: 0.0,
            truncated: false,
            avg_thrashes: 0.0,
            avg_pauses: 0.0,
            avg_yields: 0.0,
            avg_steps: 0.0,
            avg_duration: Duration::ZERO,
            outcomes: TrialOutcomes::default(),
            retries: 0,
        }
    }
}

impl fmt::Display for ProbabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reproduction probability {:.2} ({} of {} runs matched target; \
             deadlock rate {:.2}, {} deadlocked), avg thrashes {:.2}",
            self.probability,
            self.matched,
            self.trials,
            self.deadlock_rate,
            self.deadlocks,
            self.avg_thrashes
        )?;
        if self.truncated {
            write!(f, " [truncated: stopped on first match]")?;
        }
        if self.outcomes.panics + self.outcomes.timeouts + self.outcomes.internal_errors > 0
            || self.retries > 0
        {
            write!(
                f,
                " [outcomes: {}; retries {}]",
                self.outcomes, self.retries
            )?;
        }
        Ok(())
    }
}

/// One confirmed (or unconfirmed) cycle in a full pipeline run.
#[derive(Clone, Debug)]
pub struct CycleConfirmation {
    /// Index into [`Phase1Report::abstract_cycles`].
    pub cycle_index: usize,
    /// The target cycle.
    pub cycle: AbstractCycle,
    /// Trial aggregate.
    pub probability: ProbabilityReport,
    /// Whether at least one trial reproduced this cycle (DeadlockFuzzer's
    /// "confirmed real deadlock" verdict — never a false positive).
    pub confirmed: bool,
    /// The feasibility judgement the precision layer gave this cycle
    /// before any trial ran, when [`crate::Config::feasibility`] is on.
    pub feasibility: Option<CycleFeasibility>,
    /// Why confirmation could not run (invalid config or an internal
    /// panic), if it failed; the campaign records the error and moves on
    /// to the next cycle instead of aborting.
    pub error: Option<String>,
}

/// Result of the full two-phase pipeline on one program.
#[derive(Clone, Debug)]
pub struct Report {
    /// Program name.
    pub program: String,
    /// Phase I results.
    pub phase1: Phase1Report,
    /// Per-cycle Phase II confirmations.
    pub confirmations: Vec<CycleConfirmation>,
}

impl Report {
    /// Number of cycles confirmed as real deadlocks.
    pub fn confirmed_count(&self) -> usize {
        self.confirmations.iter().filter(|c| c.confirmed).count()
    }

    /// Cycles reported by iGoodlock.
    pub fn potential_count(&self) -> usize {
        self.phase1.cycle_count()
    }

    /// Confirmation campaigns that failed to run (recorded, not fatal).
    pub fn failed_count(&self) -> usize {
        self.confirmations
            .iter()
            .filter(|c| c.error.is_some())
            .count()
    }

    /// Aggregate trial-outcome counts over every confirmation campaign.
    pub fn trial_outcome_totals(&self) -> TrialOutcomes {
        let mut totals = TrialOutcomes::default();
        for c in &self.confirmations {
            totals.merge(&c.probability.outcomes);
        }
        totals
    }

    /// Builds the campaign-level [`df_obs::Metrics`] document: the
    /// observability handle's counters and phase timings, plus report-level
    /// gauges (cycle counts, iGoodlock search effort, mean thrash/yield
    /// rates) in `extra`. This is what `dfz --metrics-out` writes.
    pub fn metrics(&self, obs: &df_obs::Obs) -> df_obs::Metrics {
        let mut m = obs.metrics(&self.program);
        let stats = &self.phase1.stats;
        m.extra.insert(
            "potential_cycles".to_string(),
            self.potential_count() as f64,
        );
        m.extra.insert(
            "confirmed_cycles".to_string(),
            self.confirmed_count() as f64,
        );
        m.extra
            .insert("failed_campaigns".to_string(), self.failed_count() as f64);
        m.extra.insert(
            "relation_size".to_string(),
            self.phase1.relation_size as f64,
        );
        m.extra
            .insert("igoodlock_iterations".to_string(), stats.iterations as f64);
        m.extra.insert(
            "igoodlock_chains_built".to_string(),
            stats.chains_built as f64,
        );
        if let Some(widest) = stats.chains_per_iteration.iter().max() {
            m.extra
                .insert("igoodlock_widest_level".to_string(), *widest as f64);
        }
        m.extra.insert(
            "igoodlock_peak_open_chains".to_string(),
            stats.peak_open_chains as f64,
        );
        m.extra.insert(
            "igoodlock_join_candidates_examined".to_string(),
            stats.join_candidates_examined as f64,
        );
        for judgement in &self.phase1.feasibility {
            m.extra.insert(
                format!("feasibility_score_cycle_{}", judgement.cycle_index),
                judgement.score,
            );
        }
        let campaigns: Vec<&ProbabilityReport> = self
            .confirmations
            .iter()
            .filter(|c| c.error.is_none())
            .map(|c| &c.probability)
            .collect();
        if !campaigns.is_empty() {
            let n = campaigns.len() as f64;
            let mean =
                |f: fn(&ProbabilityReport) -> f64| campaigns.iter().map(|p| f(p)).sum::<f64>() / n;
            m.extra
                .insert("avg_thrashes".to_string(), mean(|p| p.avg_thrashes));
            m.extra
                .insert("avg_pauses".to_string(), mean(|p| p.avg_pauses));
            m.extra
                .insert("avg_yields".to_string(), mean(|p| p.avg_yields));
        }
        m
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== DeadlockFuzzer report: {} ===", self.program)?;
        write!(f, "{}", self.phase1)?;
        for c in &self.confirmations {
            match &c.error {
                Some(e) => writeln!(
                    f,
                    "  cycle {}: confirmation FAILED — {e}",
                    c.cycle_index + 1
                )?,
                None => {
                    let pruned = c.probability.trials == 0
                        && matches!(
                            c.feasibility.as_ref().map(|j| j.verdict),
                            Some(df_igoodlock::FeasibilityVerdict::Infeasible)
                        );
                    if pruned {
                        write!(f, "  cycle {}: pruned — no trials spent", c.cycle_index + 1)?;
                    } else {
                        write!(
                            f,
                            "  cycle {}: {} — {}",
                            c.cycle_index + 1,
                            if c.confirmed {
                                "CONFIRMED"
                            } else {
                                "not reproduced"
                            },
                            c.probability
                        )?;
                    }
                    if let Some(judgement) = &c.feasibility {
                        write!(f, " [predicted {judgement}]")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        let totals = self.trial_outcome_totals();
        if totals.total() > 0 {
            writeln!(f, "trial outcomes: {totals}")?;
        }
        writeln!(
            f,
            "confirmed {} of {} potential cycles",
            self.confirmed_count(),
            self.potential_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_report_display() {
        let p = ProbabilityReport {
            trials: 100,
            deadlocks: 99,
            matched: 98,
            probability: 0.98,
            deadlock_rate: 0.99,
            avg_thrashes: 0.0,
            avg_steps: 120.0,
            avg_duration: Duration::from_millis(3),
            ..ProbabilityReport::default()
        };
        let s = p.to_string();
        assert!(s.contains("probability 0.98"), "{s}");
        assert!(s.contains("98 of 100"), "{s}");
        assert!(s.contains("deadlock rate 0.99"), "{s}");
        // Untruncated clean campaigns do not clutter the row.
        assert!(!s.contains("retries"));
        assert!(!s.contains("truncated"));
    }

    #[test]
    fn probability_report_display_flags_truncated_campaigns() {
        let p = ProbabilityReport {
            trials: 1,
            deadlocks: 1,
            matched: 1,
            probability: 1.0,
            deadlock_rate: 1.0,
            truncated: true,
            ..ProbabilityReport::default()
        };
        assert!(p.to_string().contains("[truncated"), "{p}");
    }

    #[test]
    fn probability_report_display_surfaces_degradation() {
        let mut p = ProbabilityReport {
            trials: 10,
            deadlocks: 4,
            matched: 4,
            probability: 0.4,
            retries: 3,
            ..ProbabilityReport::default()
        };
        p.outcomes.deadlocks = 4;
        p.outcomes.timeouts = 5;
        p.outcomes.panics = 1;
        let s = p.to_string();
        assert!(s.contains("5 timeout"), "{s}");
        assert!(s.contains("retries 3"), "{s}");
    }

    #[test]
    fn probability_serde_round_trip() {
        let p = ProbabilityReport {
            trials: 10,
            deadlocks: 5,
            matched: 5,
            probability: 0.5,
            avg_thrashes: 1.5,
            avg_steps: 10.0,
            avg_duration: Duration::from_micros(17),
            ..ProbabilityReport::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ProbabilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trials, 10);
        assert_eq!(back.avg_duration, Duration::from_micros(17));
        assert_eq!(back.outcomes, TrialOutcomes::default());
    }

    #[test]
    fn trial_outcome_classification_covers_every_runtime_outcome() {
        use df_events::ThreadId;
        let cases = [
            (Outcome::Completed, TrialOutcome::Completed),
            (Outcome::StepLimit, TrialOutcome::Timeout),
            (Outcome::Hang, TrialOutcome::Timeout),
            (Outcome::DeadlineExceeded, TrialOutcome::Timeout),
            (
                Outcome::ProgramPanic("boom".into()),
                TrialOutcome::ProgramPanic,
            ),
            (
                Outcome::StrategyAbort("bug".into()),
                TrialOutcome::InternalError,
            ),
            (
                Outcome::Stall {
                    stuck: vec![ThreadId::new(1)],
                },
                TrialOutcome::Stall,
            ),
            (
                Outcome::CommunicationStall {
                    stuck: vec![ThreadId::new(1)],
                    waiting: vec![ThreadId::new(1)],
                },
                TrialOutcome::Stall,
            ),
        ];
        for (outcome, expected) in cases {
            assert_eq!(TrialOutcome::classify(&outcome), expected, "{outcome}");
        }
    }

    #[test]
    fn retryable_classes_are_the_non_verdicts() {
        assert!(TrialOutcome::ProgramPanic.is_retryable());
        assert!(TrialOutcome::Timeout.is_retryable());
        assert!(TrialOutcome::InternalError.is_retryable());
        assert!(!TrialOutcome::Completed.is_retryable());
        assert!(!TrialOutcome::Deadlock.is_retryable());
        assert!(!TrialOutcome::Stall.is_retryable());
    }

    #[test]
    fn trial_outcome_counters_record_and_merge() {
        let mut a = TrialOutcomes::default();
        a.record(TrialOutcome::Deadlock);
        a.record(TrialOutcome::Timeout);
        let mut b = TrialOutcomes::default();
        b.record(TrialOutcome::Deadlock);
        b.merge(&a);
        assert_eq!(b.deadlocks, 2);
        assert_eq!(b.timeouts, 1);
        assert_eq!(b.total(), 3);
        assert!(b.to_string().contains("2 deadlock"));
    }
}
