//! Deterministic adaptive allocation of Phase II trials.
//!
//! The paper's campaign spends `confirm_trials` on every iGoodlock cycle
//! uniformly. At fleet scale trials are the expensive resource, and the
//! precision layer gives the campaign a useful prior: every cycle carries
//! a feasibility verdict and score ([`df_igoodlock::CycleFeasibility`]).
//! [`allocate_trials`] turns that prior into a successive-halving-style
//! bandit loop:
//!
//! * `Infeasible`-scored cycles get **zero** trials — the verdict is
//!   sound (fork/join order forbids the deadlock state in every
//!   execution), so a trial could never confirm them.
//! * Rounds hand out doubling quanta of trials, highest-priority cycle
//!   first. Priority is the feasibility score shrunk by failures,
//!   `score / (1 + trials_run)` — the running `matched/ran` estimate of
//!   an unconfirmed cycle is `0/ran`, so every fruitless batch demotes
//!   the cycle against colder-but-untried ones.
//! * A cycle leaves the loop the moment a trial matches (confirmed — no
//!   further evidence needed) or when it reaches `confirm_trials`
//!   (exhausted, same per-cycle ceiling as the uniform campaign).
//! * An optional `total_budget` caps the campaign-wide spend.
//!
//! Determinism is the design constraint that matters: the allocator is
//! pure sequential logic over deterministic scores, trial batches within
//! a cycle run in trial-index order (trial `i` always uses seed
//! `phase2_seed_base + i`), and the executor reports the deterministic
//! sequential prefix of each batch. Consequently the allocation — which
//! cycles run, how many trials each got, in what order — is byte-for-byte
//! identical at any `jobs` value, and with no `total_budget` the set of
//! confirmed cycles provably equals the uniform campaign's (both run the
//! same seed prefix of every non-infeasible cycle until a match or the
//! ceiling).

/// Per-cycle input to [`allocate_trials`]: the feasibility prior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleBudget {
    /// Index of the cycle in its Phase I report.
    pub cycle_index: usize,
    /// Feasibility score in `[0, 1]` (use `0.5` when unscored).
    pub score: f64,
    /// Whether the cycle was soundly judged infeasible; such cycles are
    /// pruned without spending any trial.
    pub infeasible: bool,
}

/// What one executed batch of trials reported back to the allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Trials actually run — the executor may stop a batch early at the
    /// first matching trial, reporting only the sequential prefix.
    pub ran: u32,
    /// Trials within `ran` that matched the target cycle.
    pub matched: u32,
}

/// Per-cycle output of [`allocate_trials`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocationOutcome {
    /// Index of the cycle in its Phase I report.
    pub cycle_index: usize,
    /// Total trials spent on this cycle.
    pub trials_run: u32,
    /// Matching trials observed.
    pub matched: u32,
    /// Whether the cycle was skipped as provably infeasible.
    pub pruned_infeasible: bool,
    /// Whether at least one trial matched.
    pub confirmed: bool,
}

/// Trials handed to each cycle in the first round; later rounds double
/// the quantum, so hot cycles confirm within a few rounds while cold
/// ones still probe cheaply.
const INITIAL_QUANTUM: u32 = 2;

/// Runs the adaptive allocation loop, calling
/// `run_batch(slot, start_trial, len)` to execute trials
/// `start_trial .. start_trial + len` of the cycle at input slot `slot`.
/// The executor must run batches in trial-index order and may truncate a
/// batch at its first matching trial (reporting the sequential prefix);
/// both properties hold for [`crate::TrialPool::run_trials`] campaigns.
///
/// Returns one [`AllocationOutcome`] per input, in input order.
pub fn allocate_trials<F>(
    cycles: &[CycleBudget],
    confirm_trials: u32,
    total_budget: Option<u32>,
    mut run_batch: F,
) -> Vec<AllocationOutcome>
where
    F: FnMut(usize, u32, u32) -> BatchResult,
{
    let mut outcomes: Vec<AllocationOutcome> = cycles
        .iter()
        .map(|c| AllocationOutcome {
            cycle_index: c.cycle_index,
            trials_run: 0,
            matched: 0,
            pruned_infeasible: c.infeasible,
            confirmed: false,
        })
        .collect();
    let mut active: Vec<usize> = (0..cycles.len())
        .filter(|&i| !cycles[i].infeasible)
        .collect();
    let mut budget_left = total_budget;
    let mut quantum = INITIAL_QUANTUM;
    while !active.is_empty() && budget_left != Some(0) {
        // Highest priority first; ties break toward the earlier cycle so
        // the order is total and deterministic.
        active.sort_by(|&a, &b| {
            let priority = |i: usize| cycles[i].score / (1.0 + f64::from(outcomes[i].trials_run));
            priority(b)
                .partial_cmp(&priority(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(cycles[a].cycle_index.cmp(&cycles[b].cycle_index))
        });
        let round: Vec<usize> = active.clone();
        for slot in round {
            let out = &outcomes[slot];
            let mut len = quantum.min(confirm_trials - out.trials_run);
            if let Some(left) = budget_left {
                len = len.min(left);
            }
            if len == 0 {
                // Only a drained budget can zero the batch (active cycles
                // always have headroom); the campaign is over.
                active.clear();
                break;
            }
            let result = run_batch(slot, outcomes[slot].trials_run, len);
            debug_assert!(result.ran <= len, "executor ran more trials than asked");
            outcomes[slot].trials_run += result.ran;
            outcomes[slot].matched += result.matched;
            if let Some(left) = &mut budget_left {
                *left -= result.ran.min(*left);
            }
            if result.matched > 0 {
                outcomes[slot].confirmed = true;
            }
            if outcomes[slot].confirmed || outcomes[slot].trials_run >= confirm_trials {
                active.retain(|&i| i != slot);
            }
        }
        quantum = quantum.saturating_mul(2);
    }
    outcomes
}

/// Trials a uniform campaign would have spent on the same cycles, minus
/// what the adaptive one actually ran — the `trials_saved` counter.
pub fn trials_saved(outcomes: &[AllocationOutcome], confirm_trials: u32) -> u64 {
    let uniform = confirm_trials as u64 * outcomes.len() as u64;
    let spent: u64 = outcomes.iter().map(|o| u64::from(o.trials_run)).sum();
    uniform.saturating_sub(spent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(cycle_index: usize, score: f64) -> CycleBudget {
        CycleBudget {
            cycle_index,
            score,
            infeasible: false,
        }
    }

    /// An executor whose cycle at slot `s` matches on trial
    /// `first_match[s]` (`None` = never), truncating batches at the
    /// match like the pipeline does. Records every call.
    fn scripted(
        first_match: Vec<Option<u32>>,
        calls: std::rc::Rc<std::cell::RefCell<Vec<(usize, u32, u32)>>>,
    ) -> impl FnMut(usize, u32, u32) -> BatchResult {
        move |slot, start, len| {
            calls.borrow_mut().push((slot, start, len));
            match first_match[slot] {
                Some(m) if (start..start + len).contains(&m) => BatchResult {
                    ran: m - start + 1,
                    matched: 1,
                },
                _ => BatchResult {
                    ran: len,
                    matched: 0,
                },
            }
        }
    }

    #[test]
    fn infeasible_cycles_get_zero_trials() {
        let cycles = [
            budget(0, 0.9),
            CycleBudget {
                cycle_index: 1,
                score: 0.0,
                infeasible: true,
            },
        ];
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let out = allocate_trials(
            &cycles,
            4,
            None,
            scripted(vec![None, Some(0)], calls.clone()),
        );
        assert!(out[1].pruned_infeasible);
        assert_eq!(out[1].trials_run, 0);
        assert!(!out[1].confirmed);
        assert!(calls.borrow().iter().all(|&(slot, _, _)| slot == 0));
        assert_eq!(out[0].trials_run, 4, "feasible cycle still exhausts");
    }

    #[test]
    fn uncapped_campaigns_match_uniform_confirmation() {
        // Cycle 0 never matches, cycle 1 matches on trial 5, cycle 2 on
        // trial 0. Without a budget every cycle must reach its verdict:
        // exhausted at confirm_trials, or confirmed at its first match.
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cycles = [budget(0, 0.2), budget(1, 0.6), budget(2, 0.9)];
        let out = allocate_trials(
            &cycles,
            8,
            None,
            scripted(vec![None, Some(5), Some(0)], calls.clone()),
        );
        assert_eq!(out[0].trials_run, 8);
        assert!(!out[0].confirmed);
        assert_eq!(out[1].trials_run, 6, "stopped at its first match");
        assert!(out[1].confirmed);
        assert_eq!(out[2].trials_run, 1);
        assert!(out[2].confirmed);
        assert_eq!(trials_saved(&out, 8), 24 - 8 - 6 - 1);
    }

    #[test]
    fn higher_scores_probe_first() {
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cycles = [budget(0, 0.1), budget(1, 0.9)];
        allocate_trials(&cycles, 4, None, scripted(vec![None, None], calls.clone()));
        let first = calls.borrow()[0];
        assert_eq!(first.0, 1, "the hot cycle gets the first batch");
        assert_eq!(first.1, 0);
    }

    #[test]
    fn total_budget_caps_the_spend() {
        let cycles = [budget(0, 0.5), budget(1, 0.5), budget(2, 0.5)];
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let out = allocate_trials(
            &cycles,
            100,
            Some(7),
            scripted(vec![None, None, None], calls.clone()),
        );
        let spent: u32 = out.iter().map(|o| o.trials_run).sum();
        assert_eq!(spent, 7);
    }

    #[test]
    fn allocation_is_deterministic() {
        let cycles = [budget(0, 0.4), budget(1, 0.4), budget(2, 0.7)];
        let run = || {
            let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let out = allocate_trials(
                &cycles,
                16,
                Some(20),
                scripted(vec![None, Some(3), None], calls.clone()),
            );
            let seen = calls.borrow().clone();
            (out, seen)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fruitless_batches_demote_a_hot_cycle() {
        // Cycle 0 starts hot but never matches; cycle 1 starts colder.
        // After enough fruitless batches on 0, cycle 1 must get probed
        // before 0 is fully exhausted (shrinking priority at work).
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let cycles = [budget(0, 0.9), budget(1, 0.5)];
        allocate_trials(&cycles, 64, None, scripted(vec![None, None], calls.clone()));
        let calls = calls.borrow();
        let first_for_1 = calls.iter().position(|&(s, _, _)| s == 1).unwrap();
        let last_for_0 = calls.iter().rposition(|&(s, _, _)| s == 0).unwrap();
        assert!(
            first_for_1 < last_for_0,
            "cycle 1 was starved until cycle 0 exhausted: {calls:?}"
        );
    }

    #[test]
    fn no_cycles_is_a_no_op() {
        let out = allocate_trials(&[], 10, Some(5), |_, _, _| unreachable!());
        assert!(out.is_empty());
        assert_eq!(trials_saved(&out, 10), 0);
    }
}
