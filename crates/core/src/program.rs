//! The program-under-test abstraction.

use std::sync::Arc;

use df_runtime::TCtx;

/// A multi-threaded program under test.
///
/// DeadlockFuzzer executes the same program many times (once for Phase I,
/// many times for Phase II probability estimation), so unlike a plain
/// `FnOnce` closure a `Program` must be re-runnable (`&self`) and shareable
/// across runs (`Send + Sync`).
///
/// Any `Fn(&TCtx) + Send + Sync + 'static` closure is a `Program`.
///
/// # Example
///
/// ```
/// use deadlock_fuzzer::Program;
/// use df_runtime::TCtx;
///
/// fn takes_program(_p: impl Program) {}
/// takes_program(|ctx: &TCtx| ctx.yield_now());
/// ```
pub trait Program: Send + Sync + 'static {
    /// Runs the program's main thread.
    fn run(&self, ctx: &TCtx);

    /// A human-readable name (used in reports).
    fn name(&self) -> &str {
        "program"
    }
}

impl<F> Program for F
where
    F: Fn(&TCtx) + Send + Sync + 'static,
{
    fn run(&self, ctx: &TCtx) {
        self(ctx)
    }
}

/// A named wrapper around any program.
///
/// # Example
///
/// ```
/// use deadlock_fuzzer::{Named, Program};
/// use df_runtime::TCtx;
///
/// let p = Named::new("idle", |ctx: &TCtx| ctx.yield_now());
/// assert_eq!(p.name(), "idle");
/// ```
pub struct Named<P> {
    name: String,
    inner: P,
}

impl<P: Program> Named<P> {
    /// Wraps `inner` with `name`.
    pub fn new(name: impl Into<String>, inner: P) -> Self {
        Named {
            name: name.into(),
            inner,
        }
    }
}

impl<P: Program> Program for Named<P> {
    fn run(&self, ctx: &TCtx) {
        self.inner.run(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Type-erased shareable program handle.
pub type ProgramRef = Arc<dyn Program>;

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_runtime::{strategy::FifoStrategy, RunConfig, VirtualRuntime};

    #[test]
    fn closures_are_programs() {
        let p: ProgramRef = Arc::new(|ctx: &TCtx| {
            ctx.work(1);
        });
        assert_eq!(p.name(), "program");
        let p2 = Arc::clone(&p);
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(FifoStrategy::new()), move |ctx| p2.run(ctx));
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn named_programs_report_their_name() {
        let p = Named::new("figure1", |ctx: &TCtx| {
            let _l = ctx.new_lock(site!());
        });
        assert_eq!(p.name(), "figure1");
    }
}
