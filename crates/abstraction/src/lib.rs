//! Object abstractions (paper §2.4): correlating threads and locks across
//! executions.
//!
//! Phase I (iGoodlock) observes one execution and reports potential
//! deadlock cycles; Phase II re-executes the program and must decide, for
//! *its own* dynamic objects, whether they are "the same" threads and locks
//! the cycle mentions. Dynamic ids (addresses) change between executions,
//! so the paper introduces *object abstractions*: functions `abs(o)` of
//! static program information such that if two dynamic objects in different
//! executions correspond, they have equal abstractions.
//!
//! Four abstraction schemes are implemented, matching the paper's
//! experimental variants (Figure 2):
//!
//! * [`AbstractionMode::Trivial`] — every object maps to the same
//!   abstraction (the paper's "ignore abstraction" baseline);
//! * [`AbstractionMode::Site`] — the allocation-site label;
//! * [`AbstractionMode::KObject`] — `absO_k` (§2.4.1): the allocation sites
//!   of the object, its allocator's receiver, and so on, up to `k` levels
//!   (k-object-sensitivity);
//! * [`AbstractionMode::ExecIndex`] — `absI_k` (§2.4.2): the last `k`
//!   frames of the light-weight execution-indexing call stack captured at
//!   allocation (call sites plus per-depth invocation counters).
//!
//! # Example
//!
//! ```
//! use df_abstraction::{AbstractionMode, Abstractor};
//! use df_events::{Label, ObjKind, ObjectTable};
//!
//! let mut table = ObjectTable::new();
//! let site = Label::new("main:22");
//! let o = table.create(ObjKind::Lock, site, None, Vec::new());
//! let abs = Abstractor::new(AbstractionMode::Site).abs(&table, o);
//! assert_eq!(abs.to_string(), "[main:22]");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

use df_events::{IndexFrame, Label, ObjId, ObjectTable};
use serde::{Deserialize, Serialize};

/// Which abstraction function to use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AbstractionMode {
    /// All objects share one abstraction ("ignore abstraction").
    Trivial,
    /// Allocation-site label only.
    Site,
    /// `absO_k`: k-object-sensitive allocation-site chain (§2.4.1).
    KObject(usize),
    /// `absI_k`: light-weight execution indexing (§2.4.2).
    ExecIndex(usize),
}

impl Default for AbstractionMode {
    /// The paper's best-performing variant: execution indexing with
    /// `k = 10` (variant 2 of §5.2).
    fn default() -> Self {
        AbstractionMode::ExecIndex(10)
    }
}

impl fmt::Display for AbstractionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractionMode::Trivial => f.write_str("trivial"),
            AbstractionMode::Site => f.write_str("site"),
            AbstractionMode::KObject(k) => write!(f, "k-object(k={k})"),
            AbstractionMode::ExecIndex(k) => write!(f, "exec-index(k={k})"),
        }
    }
}

/// The abstraction value of one dynamic object.
///
/// Two dynamic objects (possibly from different executions) are considered
/// "the same" by DeadlockFuzzer when their abstractions — computed under
/// the same [`AbstractionMode`] — are equal.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Abstraction {
    /// The single trivial abstraction.
    Trivial,
    /// Allocation site.
    Site(Label),
    /// `absO_k`: allocation sites of the creation chain, the object's own
    /// site first.
    KObject(Vec<Label>),
    /// `absI_k`: the innermost `k` execution-index frames, **innermost
    /// first** (the paper's `[c1, q1, c2, q2, …]` order).
    ExecIndex(Vec<IndexFrame>),
}

impl fmt::Display for Abstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Abstraction::Trivial => f.write_str("[*]"),
            Abstraction::Site(site) => write!(f, "[{site}]"),
            Abstraction::KObject(sites) => {
                f.write_str("[")?;
                for (i, s) in sites.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{s}")?;
                }
                f.write_str("]")
            }
            Abstraction::ExecIndex(frames) => {
                f.write_str("[")?;
                for (i, fr) in frames.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}, {}", fr.site, fr.count)?;
                }
                f.write_str("]")
            }
        }
    }
}

/// Computes abstractions of dynamic objects under a fixed mode.
///
/// # Example
///
/// ```
/// use df_abstraction::{AbstractionMode, Abstractor};
/// let a = Abstractor::new(AbstractionMode::Trivial);
/// assert_eq!(a.mode(), AbstractionMode::Trivial);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Abstractor {
    mode: AbstractionMode,
}

impl Abstractor {
    /// Creates an abstractor for `mode`.
    pub fn new(mode: AbstractionMode) -> Self {
        Abstractor { mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> AbstractionMode {
        self.mode
    }

    /// Computes `abs(obj)` from the object table of an execution.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not in `objects` (a cross-execution id mix-up —
    /// a caller bug worth failing loudly on).
    pub fn abs(&self, objects: &ObjectTable, obj: ObjId) -> Abstraction {
        match self.mode {
            AbstractionMode::Trivial => Abstraction::Trivial,
            AbstractionMode::Site => Abstraction::Site(objects.get(obj).site),
            AbstractionMode::KObject(k) => {
                let chain = objects
                    .owner_chain(obj, k)
                    .into_iter()
                    .map(|m| m.site)
                    .collect();
                Abstraction::KObject(chain)
            }
            AbstractionMode::ExecIndex(k) => {
                let meta = objects.get(obj);
                // `meta.index` is outermost-first; the abstraction is the
                // innermost `k` frames, reported innermost-first like the
                // paper's `[c1, q1, …, ck, qk]`.
                let frames = meta.index.iter().rev().take(k).copied().collect();
                Abstraction::ExecIndex(frames)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::ObjKind;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// Builds the paper's §2.4.2 example object table:
    /// main calls foo() 5 times; foo calls bar() twice; bar allocates 3
    /// objects per call. 30 objects total.
    fn paper_table() -> (ObjectTable, Vec<ObjId>) {
        let mut table = ObjectTable::new();
        let mut objs = Vec::new();
        let (s3, s6, s7, s11) = (l("main:3"), l("foo:6"), l("foo:7"), l("bar:11"));
        for i in 1..=5u32 {
            for (bar_call, bar_count) in [(s6, 1u32), (s7, 1u32)] {
                for j in 1..=3u32 {
                    let index = vec![
                        IndexFrame::new(s3, i),
                        IndexFrame::new(bar_call, bar_count),
                        IndexFrame::new(s11, j),
                    ];
                    objs.push(table.create(ObjKind::Plain, s11, None, index));
                }
            }
        }
        (table, objs)
    }

    #[test]
    fn exec_index_matches_paper_first_and_last() {
        let (table, objs) = paper_table();
        let a = Abstractor::new(AbstractionMode::ExecIndex(3));
        let first = a.abs(&table, objs[0]);
        // Paper: absI3(first) = [11,1, 6,1, 3,1]
        assert_eq!(
            first,
            Abstraction::ExecIndex(vec![
                IndexFrame::new(l("bar:11"), 1),
                IndexFrame::new(l("foo:6"), 1),
                IndexFrame::new(l("main:3"), 1),
            ])
        );
        let last = a.abs(&table, *objs.last().unwrap());
        // Paper: absI3(last) = [11,3, 7,1, 3,5]
        assert_eq!(
            last,
            Abstraction::ExecIndex(vec![
                IndexFrame::new(l("bar:11"), 3),
                IndexFrame::new(l("foo:7"), 1),
                IndexFrame::new(l("main:3"), 5),
            ])
        );
    }

    #[test]
    fn exec_index_truncates_to_k() {
        let (table, objs) = paper_table();
        let a1 = Abstractor::new(AbstractionMode::ExecIndex(1));
        match a1.abs(&table, objs[0]) {
            Abstraction::ExecIndex(frames) => {
                assert_eq!(frames.len(), 1);
                assert_eq!(frames[0].site, l("bar:11"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // k larger than the stack returns the whole stack.
        let a9 = Abstractor::new(AbstractionMode::ExecIndex(9));
        match a9.abs(&table, objs[0]) {
            Abstraction::ExecIndex(frames) => assert_eq!(frames.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exec_index_distinguishes_same_site_allocations() {
        let (table, objs) = paper_table();
        let a = Abstractor::new(AbstractionMode::ExecIndex(3));
        let mut seen = std::collections::HashSet::new();
        for &o in &objs {
            seen.insert(a.abs(&table, o));
        }
        // All 30 allocations share one site but have distinct indices.
        assert_eq!(seen.len(), objs.len());
        let site = Abstractor::new(AbstractionMode::Site);
        let sites: std::collections::HashSet<_> =
            objs.iter().map(|&o| site.abs(&table, o)).collect();
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn trivial_collapses_everything() {
        let (table, objs) = paper_table();
        let a = Abstractor::new(AbstractionMode::Trivial);
        for &o in &objs {
            assert_eq!(a.abs(&table, o), Abstraction::Trivial);
        }
    }

    #[test]
    fn kobject_follows_owner_chain() {
        let mut table = ObjectTable::new();
        let factory = table.create(ObjKind::Plain, l("Main.make:5"), None, vec![]);
        let pool = table.create(
            ObjKind::Plain,
            l("Factory.newPool:9"),
            Some(factory),
            vec![],
        );
        let lock = table.create(ObjKind::Lock, l("Pool.newLock:3"), Some(pool), vec![]);
        let k1 = Abstractor::new(AbstractionMode::KObject(1)).abs(&table, lock);
        assert_eq!(k1, Abstraction::KObject(vec![l("Pool.newLock:3")]));
        let k3 = Abstractor::new(AbstractionMode::KObject(3)).abs(&table, lock);
        assert_eq!(
            k3,
            Abstraction::KObject(vec![
                l("Pool.newLock:3"),
                l("Factory.newPool:9"),
                l("Main.make:5")
            ])
        );
        // Chain shorter than k: fewer than k elements, per the paper.
        let k9 = Abstractor::new(AbstractionMode::KObject(9)).abs(&table, lock);
        match k9 {
            Abstraction::KObject(chain) => assert_eq!(chain.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kobject_distinguishes_factory_products_by_owner() {
        // Two locks allocated by the same statement but owned by different
        // factory objects — the k=2 abstraction separates them when the
        // factories come from different sites.
        let mut table = ObjectTable::new();
        let f1 = table.create(ObjKind::Plain, l("Main:1"), None, vec![]);
        let f2 = table.create(ObjKind::Plain, l("Main:2"), None, vec![]);
        let lock_site = l("Factory.makeLock:7");
        let l1 = table.create(ObjKind::Lock, lock_site, Some(f1), vec![]);
        let l2 = table.create(ObjKind::Lock, lock_site, Some(f2), vec![]);
        let a1 = Abstractor::new(AbstractionMode::KObject(1));
        assert_eq!(a1.abs(&table, l1), a1.abs(&table, l2));
        let a2 = Abstractor::new(AbstractionMode::KObject(2));
        assert_ne!(a2.abs(&table, l1), a2.abs(&table, l2));
    }

    #[test]
    fn displays_match_paper_notation() {
        let (table, objs) = paper_table();
        let a = Abstractor::new(AbstractionMode::ExecIndex(3));
        assert_eq!(
            a.abs(&table, objs[0]).to_string(),
            "[bar:11, 1, foo:6, 1, main:3, 1]"
        );
        assert_eq!(Abstraction::Trivial.to_string(), "[*]");
        assert_eq!(Abstraction::Site(l("x:1")).to_string(), "[x:1]");
        assert_eq!(
            Abstraction::KObject(vec![l("a:1"), l("b:2")]).to_string(),
            "[a:1, b:2]"
        );
        assert_eq!(
            AbstractionMode::ExecIndex(10).to_string(),
            "exec-index(k=10)"
        );
        assert_eq!(AbstractionMode::KObject(2).to_string(), "k-object(k=2)");
    }

    #[test]
    fn default_mode_is_exec_index_10() {
        assert_eq!(AbstractionMode::default(), AbstractionMode::ExecIndex(10));
    }

    #[test]
    fn serde_round_trip() {
        let (table, objs) = paper_table();
        let a = Abstractor::new(AbstractionMode::ExecIndex(2)).abs(&table, objs[3]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Abstraction = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use df_events::ObjKind;
    use proptest::prelude::*;

    /// Random object tables: a forest of owner chains with random index
    /// stacks.
    fn arb_table(max: usize) -> impl Strategy<Value = ObjectTable> {
        prop::collection::vec(
            (
                0..8u32,                                         // site pool
                prop::option::of(0..max as u32),                 // owner (by earlier index)
                prop::collection::vec((0..6u32, 1..5u32), 0..5), // index frames
            ),
            1..max,
        )
        .prop_map(|specs| {
            let mut table = ObjectTable::new();
            for (i, (site, owner, frames)) in specs.iter().enumerate() {
                let owner = owner.and_then(|o| {
                    if i == 0 {
                        None
                    } else {
                        Some(df_events::ObjId::new(o % (i as u32)))
                    }
                });
                let index = frames
                    .iter()
                    .map(|&(s, c)| IndexFrame::new(Label::new(&format!("s:{s}")), c))
                    .collect();
                table.create(
                    ObjKind::Plain,
                    Label::new(&format!("site:{site}")),
                    owner,
                    index,
                );
            }
            table
        })
    }

    proptest! {
        /// abs is a pure function: same inputs, same outputs.
        #[test]
        fn abs_is_deterministic(table in arb_table(12), k in 1usize..6) {
            for mode in [
                AbstractionMode::Trivial,
                AbstractionMode::Site,
                AbstractionMode::KObject(k),
                AbstractionMode::ExecIndex(k),
            ] {
                let a = Abstractor::new(mode);
                for meta in table.iter() {
                    prop_assert_eq!(a.abs(&table, meta.id), a.abs(&table, meta.id));
                }
            }
        }

        /// Refinement: equality at k+1 implies equality at k (the deeper
        /// abstraction only splits classes, never merges them).
        #[test]
        fn exec_index_equality_is_monotone_in_k(table in arb_table(12), k in 1usize..5) {
            let fine = Abstractor::new(AbstractionMode::ExecIndex(k + 1));
            let coarse = Abstractor::new(AbstractionMode::ExecIndex(k));
            let metas: Vec<_> = table.iter().collect();
            for a in &metas {
                for b in &metas {
                    if fine.abs(&table, a.id) == fine.abs(&table, b.id) {
                        prop_assert_eq!(coarse.abs(&table, a.id), coarse.abs(&table, b.id));
                    }
                }
            }
        }

        /// Same monotonicity for absO_k.
        #[test]
        fn kobject_equality_is_monotone_in_k(table in arb_table(12), k in 1usize..5) {
            let fine = Abstractor::new(AbstractionMode::KObject(k + 1));
            let coarse = Abstractor::new(AbstractionMode::KObject(k));
            let metas: Vec<_> = table.iter().collect();
            for a in &metas {
                for b in &metas {
                    if fine.abs(&table, a.id) == fine.abs(&table, b.id) {
                        prop_assert_eq!(coarse.abs(&table, a.id), coarse.abs(&table, b.id));
                    }
                }
            }
        }

        /// Site abstraction and KObject(1) induce the same equivalence.
        #[test]
        fn kobject_1_refines_exactly_site(table in arb_table(12)) {
            let site = Abstractor::new(AbstractionMode::Site);
            let k1 = Abstractor::new(AbstractionMode::KObject(1));
            let metas: Vec<_> = table.iter().collect();
            for a in &metas {
                for b in &metas {
                    let same_site = site.abs(&table, a.id) == site.abs(&table, b.id);
                    let same_k1 = k1.abs(&table, a.id) == k1.abs(&table, b.id);
                    prop_assert_eq!(same_site, same_k1);
                }
            }
        }
    }
}
