//! The per-run join index behind the indexed iGoodlock implementation.
//!
//! Algorithm 1 is a relational self-join: each level extends every open
//! chain with every compatible tuple of `D`. The brute-force form (kept
//! as [`crate::naive_igoodlock`]) scans **all** of `D` per chain and
//! re-checks Definition 2 with linear lockset scans. This module
//! precomputes, once per `igoodlock` call:
//!
//! * dense per-run ids for the relation's locks and threads
//!   ([`df_events::DenseInterner`] — never process-global, so parallel
//!   campaign workers stay independent);
//! * a [`BitSet`] per tuple for its lockset, making Definition 2(3)/(4)
//!   membership and disjointness word-AND operations;
//! * a bucket of candidate tuples per held lock: a chain ending in lock
//!   `l` can only be extended by tuples whose lockset contains `l`
//!   (Definition 2(3)), so the join touches candidates, not all of `D`;
//! * a dense *projection id* per tuple — the `(thread, lock, contexts)`
//!   view that cycle deduplication compares — so reporting dedups on a
//!   `Vec<u32>` key instead of cloning context vectors per candidate.
//!
//! Buckets keep tuples in relation order, which is what makes the
//! indexed join's output byte-identical to the naive one: it accepts the
//! same extensions in the same order, only skipping tuples the naive
//! scan would have rejected anyway.

use std::collections::HashMap;

use df_events::{AcquireMode, DenseInterner, Label, ObjId, ThreadId};

use crate::relation::LockDep;

/// A fixed-width bitset over dense per-run ids (`Vec<u64>` blocks; one
/// or two words for typical lock counts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold ids `0..nbits`.
    pub(crate) fn zeroed(nbits: usize) -> Self {
        BitSet {
            blocks: vec![0; nbits.div_ceil(64)],
        }
    }

    /// Inserts `bit`.
    pub(crate) fn insert(&mut self, bit: u32) {
        self.blocks[bit as usize / 64] |= 1u64 << (bit as usize % 64);
    }

    /// Whether `bit` is present.
    pub(crate) fn contains(&self, bit: u32) -> bool {
        self.blocks[bit as usize / 64] & (1u64 << (bit as usize % 64)) != 0
    }

    /// Whether the two sets share any bit (Definition 2(4)'s disjointness
    /// check, one AND per word).
    pub(crate) fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Adds every bit of `other` into `self`.
    pub(crate) fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }
}

/// Everything the indexed join precomputes about one relation. Arrays
/// are parallel to the relation's tuple order.
pub(crate) struct JoinIndex {
    /// Interned acquired lock of each tuple.
    pub(crate) lock: Vec<u32>,
    /// Acquisition mode of each tuple's acquired lock.
    pub(crate) mode: Vec<AcquireMode>,
    /// Thread of each tuple (raw id, for the §2.2.3 `>` root compare).
    pub(crate) thread: Vec<ThreadId>,
    /// Interned thread of each tuple (for the Definition 2(1) bitset).
    pub(crate) thread_bit: Vec<u32>,
    /// Interned lockset of each tuple as a bitset (all hold modes).
    pub(crate) lockset: Vec<BitSet>,
    /// The exclusively-held subset of each tuple's lockset. The
    /// mode-aware Definition 2(4): two locksets conflict only where at
    /// least one side holds a common lock exclusively, so disjointness
    /// becomes two AND probes against these.
    pub(crate) lockset_excl: Vec<BitSet>,
    /// Dense id of each tuple's `(thread, lock, mode, contexts)`
    /// projection — the cycle-dedup key space.
    pub(crate) proj: Vec<u32>,
    /// For each interned lock `l`: the tuples whose lockset contains
    /// `l` in any mode, in relation order. Extension candidates for a
    /// chain ending in an *exclusive* acquisition (which conflicts with
    /// every hold).
    buckets: Vec<Vec<u32>>,
    /// For each interned lock `l`: the tuples holding `l` exclusively,
    /// in relation order. Extension candidates for a chain ending in a
    /// *shared* acquisition — read-read pairs never appear here, which
    /// is the bitset-level pruning of the mode-aware join.
    buckets_excl: Vec<Vec<u32>>,
    /// Number of distinct locks (bitset width).
    lock_bits: usize,
    /// Number of distinct threads (bitset width).
    thread_bits: usize,
}

impl JoinIndex {
    /// Builds the index in one pass over the relation (plus one pass to
    /// fill the buckets).
    pub(crate) fn build(deps: &[LockDep]) -> JoinIndex {
        let mut locks: DenseInterner<ObjId> = DenseInterner::new();
        let mut threads: DenseInterner<ThreadId> = DenseInterner::new();
        // Projections are interned by exact value (contexts included) so
        // dedup over projection ids is precisely the naive dedup over
        // `(thread, lock, mode, contexts)` tuples. The one context-vector
        // clone per tuple happens here, at build time — never per
        // candidate.
        let mut projections: HashMap<(ThreadId, ObjId, AcquireMode, Vec<Label>), u32> =
            HashMap::new();
        let mut interned_ids = Vec::with_capacity(deps.len());
        for d in deps {
            locks.intern(d.lock);
            for &l in &d.lockset {
                locks.intern(l);
            }
            threads.intern(d.thread);
            let next = u32::try_from(projections.len()).expect("relation fits u32");
            let id = *projections
                .entry((d.thread, d.lock, d.mode, d.contexts.clone()))
                .or_insert(next);
            interned_ids.push(id);
        }
        let lock_bits = locks.len();
        let thread_bits = threads.len();
        let mut index = JoinIndex {
            lock: Vec::with_capacity(deps.len()),
            mode: Vec::with_capacity(deps.len()),
            thread: Vec::with_capacity(deps.len()),
            thread_bit: Vec::with_capacity(deps.len()),
            lockset: Vec::with_capacity(deps.len()),
            lockset_excl: Vec::with_capacity(deps.len()),
            proj: interned_ids,
            buckets: vec![Vec::new(); lock_bits],
            buckets_excl: vec![Vec::new(); lock_bits],
            lock_bits,
            thread_bits,
        };
        for (i, d) in deps.iter().enumerate() {
            let lock = locks.get(d.lock).expect("interned above");
            index.lock.push(lock);
            index.mode.push(d.mode);
            index.thread.push(d.thread);
            index
                .thread_bit
                .push(threads.get(d.thread).expect("interned above"));
            let mut set = BitSet::zeroed(lock_bits);
            let mut set_excl = BitSet::zeroed(lock_bits);
            for (j, &l) in d.lockset.iter().enumerate() {
                let bit = locks.get(l).expect("interned above");
                set.insert(bit);
                index.buckets[bit as usize].push(u32::try_from(i).expect("relation fits u32"));
                let hold = d
                    .hold_modes
                    .get(j)
                    .copied()
                    .unwrap_or(AcquireMode::Exclusive);
                if hold.is_exclusive() {
                    set_excl.insert(bit);
                    index.buckets_excl[bit as usize]
                        .push(u32::try_from(i).expect("relation fits u32"));
                }
            }
            index.lockset.push(set);
            index.lockset_excl.push(set_excl);
        }
        index
    }

    /// The candidate tuples for extending a chain whose last acquired
    /// lock is `last_lock` in mode `last_mode`: those whose lockset holds
    /// it *conflictingly* (Definition 2(3) plus the mode edge rule), in
    /// relation order. An exclusive acquisition conflicts with any hold;
    /// a shared acquisition only with exclusive holds, so read-read
    /// pairs never even enter the join.
    pub(crate) fn candidates(&self, last_lock: u32, last_mode: AcquireMode) -> &[u32] {
        match last_mode {
            AcquireMode::Exclusive => &self.buckets[last_lock as usize],
            AcquireMode::Shared => &self.buckets_excl[last_lock as usize],
        }
    }

    /// Whether tuple `first`'s hold of `last_lock` conflicts with an
    /// acquisition of it in `last_mode` — the mode-aware Definition 3
    /// closing check.
    pub(crate) fn closes_against(
        &self,
        first: usize,
        last_lock: u32,
        last_mode: AcquireMode,
    ) -> bool {
        match last_mode {
            AcquireMode::Exclusive => self.lockset[first].contains(last_lock),
            AcquireMode::Shared => self.lockset_excl[first].contains(last_lock),
        }
    }

    /// Width of lock bitsets.
    pub(crate) fn lock_bits(&self) -> usize {
        self.lock_bits
    }

    /// Width of thread bitsets.
    pub(crate) fn thread_bits(&self) -> usize {
        self.thread_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::Label;

    fn dep(t: u32, held: &[u32], lock: u32) -> LockDep {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            held.iter().map(|&h| ObjId::new(100 + h)).collect(),
            ObjId::new(100 + lock),
            (0..=held.len())
                .map(|i| Label::new(&format!("ix:{i}")))
                .collect(),
        )
    }

    #[test]
    fn bitset_operations() {
        let mut a = BitSet::zeroed(130);
        let mut b = BitSet::zeroed(130);
        a.insert(0);
        a.insert(129);
        b.insert(64);
        assert!(a.contains(129));
        assert!(!a.contains(64));
        assert!(!a.intersects(&b));
        b.insert(0);
        assert!(a.intersects(&b));
        let mut u = BitSet::zeroed(130);
        u.union_with(&a);
        u.union_with(&b);
        for bit in [0u32, 64, 129] {
            assert!(u.contains(bit));
        }
    }

    #[test]
    fn buckets_keep_relation_order_and_cover_locksets() {
        let deps = vec![
            dep(1, &[1], 2),
            dep(2, &[2, 3], 1),
            dep(3, &[1, 3], 4),
            dep(4, &[2], 5),
        ];
        let index = JoinIndex::build(&deps);
        // Lock "101" — acquired by tuple 1, held by tuples 0 and 2 —
        // buckets its holders in relation order.
        assert_eq!(
            index.candidates(index.lock[1], AcquireMode::Exclusive),
            &[0, 2]
        );
        // All holds are exclusive here, so a shared acquisition sees the
        // same candidates.
        assert_eq!(
            index.candidates(index.lock[1], AcquireMode::Shared),
            &[0, 2]
        );
        // A lock held nowhere (the acquired-only lock "105") has no
        // candidates.
        assert_eq!(
            index.candidates(index.lock[3], AcquireMode::Exclusive),
            &[] as &[u32]
        );
        assert_eq!(index.lock_bits(), 5);
        assert_eq!(index.thread_bits(), 4);
    }

    #[test]
    fn shared_holds_leave_the_exclusive_bucket() {
        // Tuple 0 holds lock 101 in read mode, tuple 1 holds it in write
        // mode. A shared (read) acquisition of 101 only conflicts with
        // tuple 1; an exclusive one with both.
        let mut read_holder = dep(1, &[1], 2);
        read_holder.hold_modes[0] = AcquireMode::Shared;
        let write_holder = dep(2, &[1], 3);
        let index = JoinIndex::build(&[read_holder, write_holder]);
        // Lock 101 is the single held lock of both tuples; find its bit
        // via tuple 1's lockset.
        let bit = (0..index.lock_bits() as u32)
            .find(|&b| index.lockset[1].contains(b))
            .unwrap();
        assert_eq!(index.candidates(bit, AcquireMode::Exclusive), &[0, 1]);
        assert_eq!(index.candidates(bit, AcquireMode::Shared), &[1]);
        assert!(index.lockset[0].contains(bit));
        assert!(!index.lockset_excl[0].contains(bit));
        assert!(index.lockset_excl[1].contains(bit));
        // Closing checks follow the same rule.
        assert!(index.closes_against(0, bit, AcquireMode::Exclusive));
        assert!(!index.closes_against(0, bit, AcquireMode::Shared));
        assert!(index.closes_against(1, bit, AcquireMode::Shared));
    }

    #[test]
    fn projection_ids_identify_the_dedup_view() {
        // Same (thread, lock, contexts), different locksets → same
        // projection id; different contexts → different id.
        let a = dep(1, &[1], 9);
        let b = LockDep {
            lockset: vec![ObjId::new(100 + 2)],
            ..a.clone()
        };
        let mut c = dep(1, &[1], 9);
        c.contexts = vec![Label::new("other:0"), Label::new("other:1")];
        let index = JoinIndex::build(&[a, b, c]);
        assert_eq!(index.proj[0], index.proj[1]);
        assert_ne!(index.proj[0], index.proj[2]);
    }
}
