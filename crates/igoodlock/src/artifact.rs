//! The versioned on-disk relation format (`df-relation` v1).
//!
//! `dfz record --relation-out` persists the streamed
//! [`LockDependencyRelation`] so iGoodlock can run in a different
//! process (or much later) without re-executing the program. Like the
//! `df-trace` artifact in `df-events`, the envelope carries an explicit
//! format name and version, and readers reject anything they do not
//! understand instead of guessing.

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use crate::LockDependencyRelation;

/// Format name stamped into every relation artifact.
pub const RELATION_FORMAT: &str = "df-relation";

/// Current version of the on-disk relation format.
pub const RELATION_FORMAT_VERSION: u32 = 1;

/// The serialized envelope: format metadata plus the relation itself.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
struct RelationArtifact {
    format: String,
    version: u32,
    relation: LockDependencyRelation,
}

/// Why a relation artifact could not be written or read.
#[derive(Debug)]
pub enum RelationArtifactError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The document was not valid JSON for the envelope shape.
    Json(String),
    /// The envelope names a different format.
    WrongFormat(String),
    /// The envelope's version is not [`RELATION_FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
}

impl fmt::Display for RelationArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationArtifactError::Io(e) => write!(f, "relation artifact i/o error: {e}"),
            RelationArtifactError::Json(e) => {
                write!(f, "relation artifact malformed: {e}")
            }
            RelationArtifactError::WrongFormat(found) => write!(
                f,
                "artifact format is '{found}', expected '{RELATION_FORMAT}'"
            ),
            RelationArtifactError::VersionMismatch { found, expected } => write!(
                f,
                "artifact version {found} is not supported (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for RelationArtifactError {}

impl From<io::Error> for RelationArtifactError {
    fn from(e: io::Error) -> Self {
        RelationArtifactError::Io(e)
    }
}

/// Writes `relation` as a versioned artifact.
pub fn write_relation<W: Write>(
    mut out: W,
    relation: &LockDependencyRelation,
) -> Result<(), RelationArtifactError> {
    let doc = RelationArtifact {
        format: RELATION_FORMAT.to_string(),
        version: RELATION_FORMAT_VERSION,
        relation: relation.clone(),
    };
    let json =
        serde_json::to_string(&doc).map_err(|e| RelationArtifactError::Json(e.to_string()))?;
    out.write_all(json.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    Ok(())
}

/// Reads a versioned relation artifact back.
///
/// # Errors
///
/// Rejects documents with the wrong format name
/// ([`RelationArtifactError::WrongFormat`]) or version
/// ([`RelationArtifactError::VersionMismatch`]).
pub fn read_relation<R: Read>(
    mut input: R,
) -> Result<LockDependencyRelation, RelationArtifactError> {
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    let doc: RelationArtifact =
        serde_json::from_str(&text).map_err(|e| RelationArtifactError::Json(e.to_string()))?;
    if doc.format != RELATION_FORMAT {
        return Err(RelationArtifactError::WrongFormat(doc.format));
    }
    if doc.version != RELATION_FORMAT_VERSION {
        return Err(RelationArtifactError::VersionMismatch {
            found: doc.version,
            expected: RELATION_FORMAT_VERSION,
        });
    }
    Ok(doc.relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockDep;
    use df_events::{Label, ObjId, ThreadId};

    fn sample_relation() -> LockDependencyRelation {
        LockDependencyRelation::from_deps(vec![LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(0),
            vec![ObjId::new(2)],
            ObjId::new(3),
            vec![Label::new("run:15"), Label::new("run:16")],
        )])
    }

    #[test]
    fn round_trips() {
        let rel = sample_relation();
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let back = read_relation(&buf[..]).unwrap();
        assert_eq!(rel, back);
    }

    #[test]
    fn rejects_wrong_version() {
        let rel = sample_relation();
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let bumped = String::from_utf8(buf)
            .unwrap()
            .replacen("\"version\":1", "\"version\":7", 1);
        match read_relation(bumped.as_bytes()) {
            Err(RelationArtifactError::VersionMismatch { found: 7, expected }) => {
                assert_eq!(expected, RELATION_FORMAT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_format() {
        let rel = sample_relation();
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let renamed = String::from_utf8(buf)
            .unwrap()
            .replacen("df-relation", "df-banana", 1);
        assert!(matches!(
            read_relation(renamed.as_bytes()),
            Err(RelationArtifactError::WrongFormat(f)) if f == "df-banana"
        ));
    }
}
