//! Potential deadlock cycles — concrete and abstract forms.

use std::fmt;

use df_abstraction::{Abstraction, Abstractor};
use df_events::{AcquireMode, Label, ObjId, ObjectTable, ThreadId};
use serde::{Deserialize, Serialize};

use crate::relation::LockDep;

/// One component of a concrete potential deadlock cycle: thread `thread`
/// acquires `lock` (in `mode`) while holding `lockset`, and the *next*
/// component's thread holds `lock` in a conflicting mode.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CycleComponent {
    /// The thread of this component.
    pub thread: ThreadId,
    /// The object representing the thread.
    pub thread_obj: ObjId,
    /// Locks held, outermost first.
    pub lockset: Vec<ObjId>,
    /// The lock being acquired.
    pub lock: ObjId,
    /// Acquisition sites of `lockset ∪ {lock}` (`lock`'s site last).
    pub contexts: Vec<Label>,
    /// Mode in which `lock` is being acquired.
    pub mode: AcquireMode,
    /// Modes in which each lock of `lockset` is held, parallel to it.
    pub hold_modes: Vec<AcquireMode>,
}

impl CycleComponent {
    /// An all-exclusive component — the plain-mutex vocabulary.
    pub fn exclusive(
        thread: ThreadId,
        thread_obj: ObjId,
        lockset: Vec<ObjId>,
        lock: ObjId,
        contexts: Vec<Label>,
    ) -> Self {
        let hold_modes = vec![AcquireMode::Exclusive; lockset.len()];
        CycleComponent {
            thread,
            thread_obj,
            lockset,
            lock,
            contexts,
            mode: AcquireMode::Exclusive,
            hold_modes,
        }
    }

    fn any_shared_hold(&self) -> bool {
        self.hold_modes.iter().any(|m| m.is_shared())
    }
}

impl From<&LockDep> for CycleComponent {
    fn from(d: &LockDep) -> Self {
        CycleComponent {
            thread: d.thread,
            thread_obj: d.thread_obj,
            lockset: d.lockset.clone(),
            lock: d.lock,
            contexts: d.contexts.clone(),
            mode: d.mode,
            hold_modes: d.hold_modes.clone(),
        }
    }
}

// Hand-written for the same reason as `LockDep`: all-exclusive
// components must serialize byte-identically to the pre-mode report
// format, and pre-mode artifacts must deserialize with exclusive
// defaults.
impl Serialize for CycleComponent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra = usize::from(self.mode.is_shared()) + usize::from(self.any_shared_hold());
        let mut state = serializer.serialize_struct("CycleComponent", 5 + extra)?;
        state.serialize_field("thread", &self.thread)?;
        state.serialize_field("thread_obj", &self.thread_obj)?;
        state.serialize_field("lockset", &self.lockset)?;
        state.serialize_field("lock", &self.lock)?;
        state.serialize_field("contexts", &self.contexts)?;
        if self.mode.is_shared() {
            state.serialize_field("mode", &self.mode)?;
        }
        if self.any_shared_hold() {
            state.serialize_field("hold_modes", &self.hold_modes)?;
        }
        state.end()
    }
}

impl<'de> Deserialize<'de> for CycleComponent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private as sp;
        let value = serde::Deserializer::__take_value(deserializer)?;
        let result: Result<Self, sp::DeError> = (move || {
            let mut entries = sp::expect_obj(value, "CycleComponent")?;
            let thread = sp::field(&mut entries, "thread")?;
            let thread_obj = sp::field(&mut entries, "thread_obj")?;
            let lockset: Vec<ObjId> = sp::field(&mut entries, "lockset")?;
            let lock = sp::field(&mut entries, "lock")?;
            let contexts = sp::field(&mut entries, "contexts")?;
            let mode = sp::field::<Option<AcquireMode>>(&mut entries, "mode")?.unwrap_or_default();
            let hold_modes = sp::field::<Option<Vec<AcquireMode>>>(&mut entries, "hold_modes")?
                .unwrap_or_else(|| vec![AcquireMode::Exclusive; lockset.len()]);
            Ok(CycleComponent {
                thread,
                thread_obj,
                lockset,
                lock,
                contexts,
                mode,
                hold_modes,
            })
        })();
        result.map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// A concrete potential deadlock cycle found by iGoodlock (Definition 3):
/// a chain `(t_1, L_1, l_1, C_1) … (t_m, L_m, l_m, C_m)` with
/// `l_i ∈ L_{i+1}` and `l_m ∈ L_1`.
///
/// The ids in a `Cycle` belong to the *Phase I* execution; use
/// [`Cycle::abstract_with`] to translate it into the execution-independent
/// form Phase II needs.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Cycle {
    components: Vec<CycleComponent>,
}

impl Cycle {
    /// Creates a cycle from components (validated in debug builds).
    pub fn new(components: Vec<CycleComponent>) -> Self {
        debug_assert!(components.len() >= 2, "a deadlock cycle has ≥ 2 threads");
        debug_assert!(
            (0..components.len()).all(|i| {
                let next = &components[(i + 1) % components.len()];
                next.lockset.contains(&components[i].lock)
            }),
            "each component's lock must be held by the next component"
        );
        Cycle { components }
    }

    /// The cycle's components in chain order.
    pub fn components(&self) -> &[CycleComponent] {
        &self.components
    }

    /// Number of threads (= locks) in the cycle.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the cycle is empty (never true for iGoodlock output).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The threads, in chain order.
    pub fn threads(&self) -> Vec<ThreadId> {
        self.components.iter().map(|c| c.thread).collect()
    }

    /// The acquired locks, in chain order.
    pub fn locks(&self) -> Vec<ObjId> {
        self.components.iter().map(|c| c.lock).collect()
    }

    /// Translates the cycle into its abstract form using `abstractor`,
    /// looking up object metadata in `objects` (the Phase I execution's
    /// table).
    pub fn abstract_with(&self, objects: &ObjectTable, abstractor: &Abstractor) -> AbstractCycle {
        AbstractCycle {
            components: self
                .components
                .iter()
                .map(|c| AbstractComponent {
                    thread: abstractor.abs(objects, c.thread_obj),
                    lock: abstractor.abs(objects, c.lock),
                    context: c.contexts.clone(),
                    mode: c.mode,
                })
                .collect(),
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            // Exclusive components render exactly as before the mode
            // vocabulary; shared acquisitions are called out as reads.
            write!(
                f,
                "({}, {}{}, [{}])",
                c.thread,
                if c.mode.is_shared() { "read " } else { "" },
                c.lock,
                c.contexts
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

/// One component of an abstract deadlock cycle: `(abs(t), abs(l), C)` —
/// exactly what iGoodlock reports to the user and to Phase II (§2.2),
/// plus the mode of the blocking acquisition so reports can name read
/// and write sites.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AbstractComponent {
    /// Abstraction of the thread object.
    pub thread: Abstraction,
    /// Abstraction of the lock object.
    pub lock: Abstraction,
    /// Acquisition-site context (the paper's `C`).
    pub context: Vec<Label>,
    /// Mode of the blocking acquisition.
    pub mode: AcquireMode,
}

// Exclusive components keep the pre-mode report encoding byte-for-byte
// (the CI compat gate diffs `dfz analyze --json` against checked-in
// goldens); the `mode` field appears, last, only when shared.
impl Serialize for AbstractComponent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra = usize::from(self.mode.is_shared());
        let mut state = serializer.serialize_struct("AbstractComponent", 3 + extra)?;
        state.serialize_field("thread", &self.thread)?;
        state.serialize_field("lock", &self.lock)?;
        state.serialize_field("context", &self.context)?;
        if self.mode.is_shared() {
            state.serialize_field("mode", &self.mode)?;
        }
        state.end()
    }
}

impl<'de> Deserialize<'de> for AbstractComponent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private as sp;
        let value = serde::Deserializer::__take_value(deserializer)?;
        let result: Result<Self, sp::DeError> = (move || {
            let mut entries = sp::expect_obj(value, "AbstractComponent")?;
            let thread = sp::field(&mut entries, "thread")?;
            let lock = sp::field(&mut entries, "lock")?;
            let context = sp::field(&mut entries, "context")?;
            let mode = sp::field::<Option<AcquireMode>>(&mut entries, "mode")?.unwrap_or_default();
            Ok(AbstractComponent {
                thread,
                lock,
                context,
                mode,
            })
        })();
        result.map_err(<D::Error as serde::de::Error>::custom)
    }
}

impl AbstractComponent {
    /// An exclusive-mode component — the plain-mutex vocabulary.
    pub fn exclusive(thread: Abstraction, lock: Abstraction, context: Vec<Label>) -> Self {
        AbstractComponent {
            thread,
            lock,
            context,
            mode: AcquireMode::Exclusive,
        }
    }

    /// The site of the final (blocking) acquisition.
    pub fn acquire_site(&self) -> Label {
        *self
            .context
            .last()
            .expect("context always includes the acquire site")
    }

    /// The site of the *outermost* acquisition in the context — where the
    /// thread starts entering the cycle (used by the §4 yield
    /// optimization).
    pub fn outermost_site(&self) -> Label {
        *self
            .context
            .first()
            .expect("context always includes at least one site")
    }
}

/// An execution-independent potential deadlock cycle:
/// `(abs(t_1), abs(l_1), C_1) … (abs(t_m), abs(l_m), C_m)`.
///
/// Two abstract cycles are compared up to rotation via
/// [`AbstractCycle::matches`] — a deadlock witnessed in Phase II may list
/// its components starting from a different thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AbstractCycle {
    components: Vec<AbstractComponent>,
}

impl AbstractCycle {
    /// Creates an abstract cycle.
    pub fn new(components: Vec<AbstractComponent>) -> Self {
        AbstractCycle { components }
    }

    /// The components in chain order.
    pub fn components(&self) -> &[AbstractComponent] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Finds the component that matches `(thread, lock, context)`, if any
    /// — the membership test `(abs(t), abs(l), C) ∈ Cycle` of Algorithm 3.
    pub fn find_component(
        &self,
        thread: &Abstraction,
        lock: &Abstraction,
        context: &[Label],
    ) -> Option<&AbstractComponent> {
        self.components
            .iter()
            .find(|c| &c.thread == thread && &c.lock == lock && c.context == context)
    }

    /// Whether `other` is the same cycle up to rotation.
    pub fn matches(&self, other: &AbstractCycle) -> bool {
        if self.components.len() != other.components.len() {
            return false;
        }
        let n = self.components.len();
        if n == 0 {
            return true;
        }
        (0..n).any(|shift| (0..n).all(|i| self.components[i] == other.components[(i + shift) % n]))
    }
}

impl fmt::Display for AbstractCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(
                f,
                "({}, {}{}, [{}])",
                c.thread,
                if c.mode.is_shared() { "read " } else { "" },
                c.lock,
                c.context
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_abstraction::AbstractionMode;
    use df_events::ObjKind;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn component(t: u32, tobj: u32, held: u32, lock: u32) -> CycleComponent {
        CycleComponent::exclusive(
            ThreadId::new(t),
            ObjId::new(tobj),
            vec![ObjId::new(held)],
            ObjId::new(lock),
            vec![l("run:15"), l("run:16")],
        )
    }

    fn two_cycle() -> Cycle {
        Cycle::new(vec![component(1, 10, 3, 4), component(2, 11, 4, 3)])
    }

    #[test]
    fn cycle_accessors() {
        let c = two_cycle();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.threads(), vec![ThreadId::new(1), ThreadId::new(2)]);
        assert_eq!(c.locks(), vec![ObjId::new(4), ObjId::new(3)]);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "held by the next")]
    #[cfg(debug_assertions)]
    fn cycle_validation_rejects_broken_chain() {
        Cycle::new(vec![component(1, 10, 3, 4), component(2, 11, 5, 3)]);
    }

    #[test]
    fn abstract_cycle_matches_up_to_rotation() {
        let mk = |a: &str, b: &str| {
            AbstractComponent::exclusive(
                Abstraction::Site(l(a)),
                Abstraction::Site(l(b)),
                vec![l("run:15"), l("run:16")],
            )
        };
        let c1 = AbstractCycle::new(vec![mk("t:1", "l:1"), mk("t:2", "l:2")]);
        let c2 = AbstractCycle::new(vec![mk("t:2", "l:2"), mk("t:1", "l:1")]);
        let c3 = AbstractCycle::new(vec![mk("t:1", "l:1"), mk("t:3", "l:3")]);
        assert!(c1.matches(&c2));
        assert!(c2.matches(&c1));
        assert!(!c1.matches(&c3));
        assert!(c1.matches(&c1));
    }

    #[test]
    fn find_component_requires_exact_triple() {
        let comp = AbstractComponent::exclusive(
            Abstraction::Site(l("t:1")),
            Abstraction::Site(l("l:1")),
            vec![l("a:1"), l("a:2")],
        );
        let cycle = AbstractCycle::new(vec![comp.clone()]);
        assert!(cycle
            .find_component(&comp.thread, &comp.lock, &comp.context)
            .is_some());
        assert!(cycle
            .find_component(&comp.thread, &comp.lock, &[l("a:1")])
            .is_none());
        assert!(cycle
            .find_component(&Abstraction::Site(l("t:2")), &comp.lock, &comp.context)
            .is_none());
        assert_eq!(comp.acquire_site(), l("a:2"));
        assert_eq!(comp.outermost_site(), l("a:1"));
    }

    #[test]
    fn abstract_with_uses_object_metadata() {
        let mut table = ObjectTable::new();
        let t1 = table.create(ObjKind::Thread, l("main:25"), None, vec![]);
        let t2 = table.create(ObjKind::Thread, l("main:26"), None, vec![]);
        let o1 = table.create(ObjKind::Lock, l("main:22"), None, vec![]);
        let o2 = table.create(ObjKind::Lock, l("main:23"), None, vec![]);
        let cycle = Cycle::new(vec![
            CycleComponent::exclusive(
                ThreadId::new(1),
                t1,
                vec![o1],
                o2,
                vec![l("run:15"), l("run:16")],
            ),
            CycleComponent::exclusive(
                ThreadId::new(2),
                t2,
                vec![o2],
                o1,
                vec![l("run:15"), l("run:16")],
            ),
        ]);
        let abs = cycle.abstract_with(&table, &Abstractor::new(AbstractionMode::Site));
        assert_eq!(abs.len(), 2);
        assert_eq!(abs.components()[0].thread, Abstraction::Site(l("main:25")));
        assert_eq!(abs.components()[0].lock, Abstraction::Site(l("main:23")));
        assert_eq!(abs.components()[1].lock, Abstraction::Site(l("main:22")));
        // Figure-1 style report text
        assert!(abs.to_string().contains("main:25"));
    }

    #[test]
    fn serde_round_trip() {
        let c = two_cycle();
        let json = serde_json::to_string(&c).unwrap();
        let back: Cycle = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn exclusive_components_serialize_without_mode_fields() {
        let c = two_cycle();
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("mode"), "{json}");
        let abs_comp = AbstractComponent::exclusive(
            Abstraction::Site(l("t:1")),
            Abstraction::Site(l("l:1")),
            vec![l("a:1")],
        );
        let json = serde_json::to_string(&abs_comp).unwrap();
        assert!(!json.contains("mode"), "{json}");
        let back: AbstractComponent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, abs_comp);
    }

    #[test]
    fn shared_components_round_trip_and_render_as_reads() {
        let mut a = component(1, 10, 3, 4);
        a.mode = AcquireMode::Shared;
        a.hold_modes[0] = AcquireMode::Shared;
        let b = component(2, 11, 4, 3);
        let cycle = Cycle::new(vec![a, b]);
        let json = serde_json::to_string(&cycle).unwrap();
        assert!(json.contains("\"mode\":\"Shared\""), "{json}");
        assert!(json.contains("hold_modes"), "{json}");
        let back: Cycle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cycle);
        let text = cycle.to_string();
        assert!(text.contains("read "), "{text}");

        let mut abs_comp = AbstractComponent::exclusive(
            Abstraction::Site(l("t:1")),
            Abstraction::Site(l("l:1")),
            vec![l("a:1")],
        );
        abs_comp.mode = AcquireMode::Shared;
        let json = serde_json::to_string(&abs_comp).unwrap();
        assert!(json.contains("\"mode\":\"Shared\""), "{json}");
        let back: AbstractComponent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, abs_comp);
        let abs_cycle = AbstractCycle::new(vec![abs_comp]);
        assert!(abs_cycle.to_string().contains("read "));
    }
}
