//! The generalized-Goodlock **DFS baseline** (Havelund; Bensalem–Havelund;
//! Agarwal–Wang–Stoller).
//!
//! The paper's first contribution is iGoodlock, which "does not use lock
//! graphs or depth-first search, but reports the same deadlocks as the
//! existing algorithms … it uses more memory, but reduces runtime
//! complexity". To *evaluate* that claim (and to cross-check Algorithm 1)
//! this module implements the classical approach: a depth-first search
//! that extends one dependency chain at a time, keeping only the current
//! path in memory.
//!
//! Both algorithms enumerate exactly the chains admitted by Definition 2
//! and report the cycles of Definition 3 with the §2.2.3 duplicate
//! suppression, so their outputs are permutations of each other — a
//! property test enforces set equality. The difference is the search
//! order and the memory/runtime trade-off:
//!
//! * `goodlock_dfs`: memory `O(longest chain)`, but every chain prefix is
//!   re-validated along each branch of the search tree;
//! * `igoodlock`: memory `O(|D_k|)` for the whole level `k`, amortizing
//!   prefix work across all extensions — and it yields cycles shortest
//!   first, which enables the paper's "one iteration under a time budget"
//!   mode.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::chains::IGoodlockOptions;
use crate::cycle::{Cycle, CycleComponent};
use crate::relation::{LockDep, LockDependencyRelation};

/// Statistics of a DFS run, for the comparison bench.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoodlockDfsStats {
    /// Chain extensions attempted.
    pub extensions: u64,
    /// Maximum search depth reached (= peak chain memory).
    pub max_depth: usize,
    /// Whether limits truncated the search.
    pub truncated: bool,
}

/// Dedup key for one chain component: who waits, on what, in which
/// mode, from which acquisition contexts.
type ComponentKey = (
    df_events::ThreadId,
    df_events::ObjId,
    df_events::AcquireMode,
    Vec<df_events::Label>,
);

struct Dfs<'a> {
    deps: &'a [LockDep],
    options: &'a IGoodlockOptions,
    cycles: Vec<Cycle>,
    reported: HashSet<Vec<ComponentKey>>,
    stats: GoodlockDfsStats,
}

impl Dfs<'_> {
    /// Extends `chain` (indices into `deps`) depth-first. Returns `false`
    /// if a limit stopped the search.
    fn explore(&mut self, chain: &mut Vec<usize>) -> bool {
        self.stats.max_depth = self.stats.max_depth.max(chain.len());
        if let Some(max) = self.options.max_cycle_length {
            if chain.len() >= max {
                self.stats.truncated = true;
                return true; // prune this branch, keep searching others
            }
        }
        let first = &self.deps[chain[0]];
        let last = &self.deps[*chain.last().expect("non-empty")];
        let (last_lock, last_mode) = (last.lock, last.mode);
        for (idx, dep) in self.deps.iter().enumerate() {
            // Definition 2, incrementally (same predicates as
            // `Chain::can_extend`, but recomputed along the path — the
            // DFS trade-off).
            if dep.thread <= first.thread {
                continue; // §2.2.3 rooting
            }
            if chain.iter().any(|&i| self.deps[i].thread == dep.thread) {
                continue;
            }
            if chain.iter().any(|&i| self.deps[i].lock == dep.lock) {
                continue;
            }
            // 2(3) + mode edge rule: read-read never blocks.
            if !dep.hold_blocks(last_lock, last_mode) {
                continue;
            }
            // Mode-aware 2(4): a common lock disqualifies iff held
            // exclusively on either side.
            if chain.iter().any(|&i| {
                self.deps[i].lockset.iter().any(|&l| {
                    dep.hold_mode_of(l).is_some_and(|dm| {
                        dm.is_exclusive()
                            || self.deps[i]
                                .hold_mode_of(l)
                                .is_some_and(|cm| cm.is_exclusive())
                    })
                })
            }) {
                continue;
            }
            self.stats.extensions += 1;
            chain.push(idx);
            // Definition 3: closed (in a conflicting mode)?
            if first.hold_blocks(dep.lock, dep.mode) {
                let key: Vec<_> = chain
                    .iter()
                    .map(|&i| {
                        (
                            self.deps[i].thread,
                            self.deps[i].lock,
                            self.deps[i].mode,
                            self.deps[i].contexts.clone(),
                        )
                    })
                    .collect();
                if self.reported.insert(key) {
                    self.cycles.push(Cycle::new(
                        chain
                            .iter()
                            .map(|&i| CycleComponent::from(&self.deps[i]))
                            .collect(),
                    ));
                    if self.cycles.len() >= self.options.max_cycles {
                        self.stats.truncated = true;
                        chain.pop();
                        return false;
                    }
                }
                // Do not extend closed cycles (no complex cycles).
            } else if !self.explore(chain) {
                chain.pop();
                return false;
            }
            chain.pop();
        }
        true
    }
}

/// Runs the DFS Goodlock baseline on `relation`; reports the same cycle
/// set as [`crate::igoodlock`] (in DFS discovery order, not
/// shortest-first).
///
/// # Example
///
/// ```
/// use df_igoodlock::{goodlock_dfs, IGoodlockOptions, LockDep, LockDependencyRelation};
/// use df_events::{Label, ObjId, ThreadId};
///
/// let dep = |t: u32, held: u32, lock: u32| {
///     LockDep::exclusive(
///         ThreadId::new(t),
///         ObjId::new(t),
///         vec![ObjId::new(held)],
///         ObjId::new(lock),
///         vec![Label::new("g:1"), Label::new("g:2")],
///     )
/// };
/// let rel = LockDependencyRelation::from_deps(vec![dep(1, 10, 11), dep(2, 11, 10)]);
/// let (cycles, _stats) = goodlock_dfs(&rel, &IGoodlockOptions::default());
/// assert_eq!(cycles.len(), 1);
/// ```
pub fn goodlock_dfs(
    relation: &LockDependencyRelation,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, GoodlockDfsStats) {
    let deps = relation.deps();
    let mut dfs = Dfs {
        deps,
        options,
        cycles: Vec::new(),
        reported: HashSet::new(),
        stats: GoodlockDfsStats::default(),
    };
    for start in 0..deps.len() {
        let mut chain = vec![start];
        if !dfs.explore(&mut chain) {
            break;
        }
    }
    (dfs.cycles, dfs.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::igoodlock;
    use df_events::{Label, ObjId, ThreadId};

    fn dep(t: u32, held: &[u32], lock: u32) -> LockDep {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            held.iter().map(|&h| ObjId::new(100 + h)).collect(),
            ObjId::new(100 + lock),
            (0..=held.len())
                .map(|i| Label::new(&format!("dfs:{i}")))
                .collect(),
        )
    }

    fn cycle_keys(cycles: &[Cycle]) -> std::collections::BTreeSet<String> {
        cycles.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn agrees_with_igoodlock_on_simple_cases() {
        for rel in [
            LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]),
            LockDependencyRelation::from_deps(vec![
                dep(1, &[1], 2),
                dep(2, &[2], 3),
                dep(3, &[3], 1),
            ]),
            LockDependencyRelation::from_deps(vec![
                dep(1, &[1], 2),
                dep(2, &[1], 2), // same order: no cycle
            ]),
        ] {
            let (dfs_cycles, _) = goodlock_dfs(&rel, &IGoodlockOptions::default());
            let it_cycles = igoodlock(&rel, &IGoodlockOptions::default());
            assert_eq!(cycle_keys(&dfs_cycles), cycle_keys(&it_cycles));
        }
    }

    #[test]
    fn depth_is_bounded_by_cycle_length() {
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 4),
            dep(4, &[4], 1),
        ]);
        let (cycles, stats) = goodlock_dfs(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
        assert!(stats.max_depth <= 4);
        assert!(stats.extensions >= 3);
    }

    #[test]
    fn max_cycle_length_prunes() {
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let (cycles, stats) = goodlock_dfs(&rel, &IGoodlockOptions::length_two_only());
        assert!(cycles.is_empty());
        assert!(stats.truncated);
    }

    #[test]
    fn max_cycles_caps_output() {
        let mut deps = Vec::new();
        for m in 0..3u32 {
            deps.push(LockDep {
                contexts: vec![
                    Label::new(&format!("cap{m}:o")),
                    Label::new(&format!("cap{m}:i")),
                ],
                ..dep(1, &[1], 2)
            });
            deps.push(LockDep {
                contexts: vec![
                    Label::new(&format!("cap{m}:o2")),
                    Label::new(&format!("cap{m}:i2")),
                ],
                ..dep(2, &[2], 1)
            });
        }
        let rel = LockDependencyRelation::from_deps(deps);
        let all = goodlock_dfs(&rel, &IGoodlockOptions::default()).0;
        assert_eq!(all.len(), 9);
        let capped = goodlock_dfs(
            &rel,
            &IGoodlockOptions {
                max_cycles: 4,
                ..IGoodlockOptions::default()
            },
        )
        .0;
        assert_eq!(capped.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::chains::igoodlock;
    use df_events::{Label, ThreadId};
    use proptest::prelude::*;

    fn arb_relation() -> impl Strategy<Value = LockDependencyRelation> {
        prop::collection::vec(
            (
                1..5u32,
                prop::collection::vec(0..6u32, 1..3),
                0..6u32,
                0..3u32,
            ),
            0..12,
        )
        .prop_map(|tuples| {
            let deps = tuples
                .into_iter()
                .filter(|(_, held, lock, _)| !held.contains(lock))
                .map(|(t, mut held, lock, ctx)| {
                    held.sort();
                    held.dedup();
                    LockDep::exclusive(
                        ThreadId::new(t),
                        df_events::ObjId::new(t),
                        held.iter()
                            .map(|&h| df_events::ObjId::new(100 + h))
                            .collect(),
                        df_events::ObjId::new(100 + lock),
                        (0..=held.len())
                            .map(|i| Label::new(&format!("pd:{ctx}:{i}")))
                            .collect(),
                    )
                })
                .collect();
            LockDependencyRelation::from_deps(deps)
        })
    }

    proptest! {
        /// The DFS baseline and Algorithm 1 report identical cycle sets.
        #[test]
        fn dfs_and_iterative_join_agree(rel in arb_relation()) {
            let (dfs_cycles, _) = goodlock_dfs(&rel, &IGoodlockOptions::default());
            let it_cycles = igoodlock(&rel, &IGoodlockOptions::default());
            let key = |cs: &[Cycle]| -> std::collections::BTreeSet<String> {
                cs.iter().map(|c| c.to_string()).collect()
            };
            prop_assert_eq!(key(&dfs_cycles), key(&it_cycles));
        }
    }
}
