//! iGoodlock — informative Goodlock (paper §2.2): predicting potential
//! deadlock cycles from a single execution trace.
//!
//! The analysis runs in two steps:
//!
//! 1. [`LockDependencyRelation::from_trace`] extracts the *lock dependency
//!    relation* `D ⊆ T × 2^L × L × C*` of Definition 1: every tuple
//!    `(t, L, l, C)` records that thread `t` acquired lock `l` while
//!    holding the locks `L`, with `C` the acquisition-site labels of
//!    `L ∪ {l}`.
//! 2. [`igoodlock`] computes potential deadlock cycles by the iterative
//!    relational join of Algorithm 1 — no lock graph, no DFS: `D_{k+1}` is
//!    built by extending every chain in `D_k` with every compatible tuple
//!    of `D` (Definition 2), reporting chains that close (Definition 3)
//!    and never extending a closed cycle (so no "complex" cycles are
//!    reported). The duplicate-suppression rule of §2.2.3 (the first
//!    thread has the minimum id) makes each cycle appear exactly once.
//!    The join is *indexed*: locks and threads are interned to dense
//!    per-run ids, locksets are bitsets, and extension candidates come
//!    from a per-lock bucket rather than a scan of the whole relation.
//!    The brute-force join is kept as [`naive_igoodlock`] — a test
//!    oracle with byte-identical output.
//!
//! The reported [`Cycle`]s carry full context information; pair them with
//! an [`df_abstraction::Abstractor`] via [`Cycle::abstract_with`] to
//! produce the [`AbstractCycle`]s that Phase II consumes.
//!
//! # Example
//!
//! ```
//! use df_igoodlock::{igoodlock, IGoodlockOptions, LockDependencyRelation};
//! use df_events::Trace;
//!
//! let trace = Trace::default(); // an empty execution
//! let relation = LockDependencyRelation::from_trace(&trace);
//! let cycles = igoodlock(&relation, &IGoodlockOptions::default());
//! assert!(cycles.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod artifact;
mod builder;
mod chains;
mod cycle;
mod dfs;
mod feasibility;
mod hb;
mod index;
mod parallel;
mod relation;

pub use artifact::{
    read_relation, write_relation, RelationArtifactError, RELATION_FORMAT, RELATION_FORMAT_VERSION,
};
pub use builder::RelationBuilder;
pub use chains::{
    igoodlock, igoodlock_filtered, igoodlock_with_stats, naive_igoodlock, naive_igoodlock_filtered,
    naive_igoodlock_with_stats, IGoodlockOptions, IGoodlockStats,
};
pub use cycle::{AbstractComponent, AbstractCycle, Cycle, CycleComponent};
pub use dfs::{goodlock_dfs, GoodlockDfsStats};
pub use feasibility::{CycleFeasibility, FeasibilityAnalysis, FeasibilityVerdict};
pub use hb::{HbFilter, VectorClock};
pub use parallel::{igoodlock_parallel, ParallelJoinStats};
pub use relation::{modes_conflict, DepTiming, LockDep, LockDependencyRelation};
