//! The lock dependency relation (Definition 1).

use std::collections::HashMap;

use df_events::{AcquireMode, Label, ObjId, ThreadId, Trace};
use serde::{Deserialize, Serialize};

/// Whether an acquisition in mode `acquire` is blocked by a hold in mode
/// `hold` of the same lock. Only read-read pairs coexist; every other
/// combination blocks. This is the edge rule of the mode-aware join:
/// a chain edge (and the closing edge) exists only for conflicting
/// pairs.
pub fn modes_conflict(acquire: AcquireMode, hold: AcquireMode) -> bool {
    !(acquire.is_shared() && hold.is_shared())
}

/// Trace positions of a dependency tuple's *hold window*: the span during
/// which the thread holds its lockset while performing the acquisition.
/// Used by the happens-before filter ([`crate::HbFilter`]) to prune
/// cycles whose windows can never overlap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct DepTiming {
    /// Sequence number of the innermost held lock's acquisition (window
    /// start).
    pub window_start_seq: u64,
    /// Sequence number of the acquisition event itself (window end).
    pub acquire_seq: u64,
}

/// One tuple `(t, L, l, C)` of the lock dependency relation: in some state
/// of the observed execution, thread `t` acquired lock `l` while holding
/// the locks `L`, where `C` are the labels of the acquire statements for
/// `L ∪ {l}` (outermost lock's site first, `l`'s site last).
///
/// The mode-aware vocabulary adds a *guard mode* to the tuple: `mode` is
/// the mode in which `l` was acquired and `hold_modes` (parallel to
/// `lockset`) the modes in which each held lock is held. Both default to
/// exclusive; relations built from plain-mutex traces serialize without
/// them, byte-identical to the pre-mode artifact format.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LockDep {
    /// The acquiring thread.
    pub thread: ThreadId,
    /// The object representing the thread (for abstraction).
    pub thread_obj: ObjId,
    /// Locks held at the acquisition, outermost first (the paper's `L`;
    /// we keep stack order because it is free and helps debugging).
    pub lockset: Vec<ObjId>,
    /// The acquired lock (the paper's `l`).
    pub lock: ObjId,
    /// Acquisition sites of `lockset` followed by the site of `lock`
    /// (the paper's `C`, `contexts.len() == lockset.len() + 1`).
    pub contexts: Vec<Label>,
    /// Mode in which `lock` was acquired.
    pub mode: AcquireMode,
    /// Modes in which each lock of `lockset` is held, parallel to it.
    pub hold_modes: Vec<AcquireMode>,
}

impl LockDep {
    /// An all-exclusive tuple — the classic plain-mutex vocabulary.
    pub fn exclusive(
        thread: ThreadId,
        thread_obj: ObjId,
        lockset: Vec<ObjId>,
        lock: ObjId,
        contexts: Vec<Label>,
    ) -> Self {
        let hold_modes = vec![AcquireMode::Exclusive; lockset.len()];
        LockDep {
            thread,
            thread_obj,
            lockset,
            lock,
            contexts,
            mode: AcquireMode::Exclusive,
            hold_modes,
        }
    }

    /// The site at which `lock` was acquired (the last context label).
    pub fn acquire_site(&self) -> Label {
        *self
            .contexts
            .last()
            .expect("contexts always include the acquire site")
    }

    /// Whether `other_lock` is held in this dependency's lockset.
    pub fn holds(&self, other_lock: ObjId) -> bool {
        self.lockset.contains(&other_lock)
    }

    /// Mode in which `other_lock` is held (exclusive for locks absent
    /// from a truncated `hold_modes`, matching the serde default).
    pub fn hold_mode_of(&self, other_lock: ObjId) -> Option<AcquireMode> {
        self.lockset.iter().position(|&l| l == other_lock).map(|i| {
            self.hold_modes
                .get(i)
                .copied()
                .unwrap_or(AcquireMode::Exclusive)
        })
    }

    /// Whether an acquisition in mode `acquire_mode` of `other_lock`
    /// would block against this tuple's hold of it. False if the lock is
    /// not held here at all.
    pub fn hold_blocks(&self, other_lock: ObjId, acquire_mode: AcquireMode) -> bool {
        self.hold_mode_of(other_lock)
            .is_some_and(|hold| modes_conflict(acquire_mode, hold))
    }

    /// Whether any lock is held in shared mode (drives the skip-if-
    /// exclusive serialization of `hold_modes`).
    fn any_shared_hold(&self) -> bool {
        self.hold_modes.iter().any(|m| m.is_shared())
    }
}

// The vendored serde derive has no `#[serde(default, skip_serializing_if)]`,
// so the compat rule — omit `mode`/`hold_modes` when all-exclusive, default
// them when absent — is hand-written. Exclusive-only relations thereby
// serialize byte-identically to the pre-mode artifact format.
impl Serialize for LockDep {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra = usize::from(self.mode.is_shared()) + usize::from(self.any_shared_hold());
        let mut state = serializer.serialize_struct("LockDep", 5 + extra)?;
        state.serialize_field("thread", &self.thread)?;
        state.serialize_field("thread_obj", &self.thread_obj)?;
        state.serialize_field("lockset", &self.lockset)?;
        state.serialize_field("lock", &self.lock)?;
        state.serialize_field("contexts", &self.contexts)?;
        if self.mode.is_shared() {
            state.serialize_field("mode", &self.mode)?;
        }
        if self.any_shared_hold() {
            state.serialize_field("hold_modes", &self.hold_modes)?;
        }
        state.end()
    }
}

impl<'de> Deserialize<'de> for LockDep {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private as sp;
        let value = serde::Deserializer::__take_value(deserializer)?;
        let result: Result<Self, sp::DeError> = (move || {
            let mut entries = sp::expect_obj(value, "LockDep")?;
            let thread = sp::field(&mut entries, "thread")?;
            let thread_obj = sp::field(&mut entries, "thread_obj")?;
            let lockset: Vec<ObjId> = sp::field(&mut entries, "lockset")?;
            let lock = sp::field(&mut entries, "lock")?;
            let contexts = sp::field(&mut entries, "contexts")?;
            let mode = sp::field::<Option<AcquireMode>>(&mut entries, "mode")?.unwrap_or_default();
            let hold_modes = sp::field::<Option<Vec<AcquireMode>>>(&mut entries, "hold_modes")?
                .unwrap_or_else(|| vec![AcquireMode::Exclusive; lockset.len()]);
            Ok(LockDep {
                thread,
                thread_obj,
                lockset,
                lock,
                contexts,
                mode,
                hold_modes,
            })
        })();
        result.map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// Clone-free tuple dedup: candidates are bucketed by hash and compared
/// exactly against the tuples already kept, so construction never clones
/// a lockset or context vector just to probe a set. (A bare
/// `HashSet<u64>` of hashes would dedup wrongly on a hash collision;
/// the exact compare makes collisions merely a second probe.)
#[derive(Default)]
pub(crate) struct DedupIndex {
    buckets: HashMap<u64, Vec<u32>>,
}

impl DedupIndex {
    fn hash_of(dep: &LockDep) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dep.hash(&mut h);
        h.finish()
    }

    /// Whether `dep` is absent from `kept`; records `kept.len()` as its
    /// future index if so (the caller pushes it next).
    pub(crate) fn is_new(&mut self, kept: &[LockDep], dep: &LockDep) -> bool {
        let ids = self.buckets.entry(Self::hash_of(dep)).or_default();
        if ids.iter().any(|&i| &kept[i as usize] == dep) {
            return false;
        }
        ids.push(u32::try_from(kept.len()).expect("relation fits u32"));
        true
    }
}

/// Inputs smaller than this dedup sequentially even when
/// [`LockDependencyRelation::from_deps_jobs`] is asked for workers —
/// hashing a few hundred tuples is cheaper than spawning.
const PARALLEL_DEDUP_MIN: usize = 256;

/// The deduplicated lock dependency relation of one execution, plus the
/// bookkeeping [`igoodlock`](crate::igoodlock) needs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LockDependencyRelation {
    deps: Vec<LockDep>,
    /// Hold-window positions of each (deduplicated) tuple's *first*
    /// occurrence, parallel to `deps`. Empty when the relation was built
    /// from bare tuples ([`Self::from_deps`]).
    timings: Vec<DepTiming>,
    /// Number of raw (non-deduplicated) dependency tuples observed.
    pub raw_count: usize,
}

impl LockDependencyRelation {
    /// Extracts the relation from a trace, following the runtime algorithm
    /// of §2.2.1: every first (0→1) acquisition event contributes one
    /// tuple. Tuples are deduplicated — repeated executions of the same
    /// acquisition with the same held set and contexts add nothing to
    /// Algorithm 1.
    ///
    /// Tuples with an empty lockset are dropped: Definition 2(3) requires
    /// `l_i ∈ L_{i+1}` and Definition 3 requires `l_m ∈ L_1`, so a tuple
    /// with `L = ∅` can participate in no cycle.
    ///
    /// This is the offline entry point of [`crate::RelationBuilder`]:
    /// the trace's thread bindings are replayed, then every event is fed
    /// through the same incremental algorithm the streaming path uses,
    /// so the two paths cannot diverge.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut builder = crate::RelationBuilder::new();
        for (thread, obj) in trace.thread_objs() {
            builder.bind_thread(thread, obj);
        }
        for event in trace.events() {
            builder.observe(event);
        }
        builder.finish()
    }

    /// Assembles a relation from the builder's accumulated parts.
    pub(crate) fn from_parts(
        deps: Vec<LockDep>,
        timings: Vec<DepTiming>,
        raw_count: usize,
    ) -> Self {
        LockDependencyRelation {
            deps,
            timings,
            raw_count,
        }
    }

    /// Builds a relation directly from tuples (used in tests and by the
    /// real-thread substrate).
    pub fn from_deps(deps: Vec<LockDep>) -> Self {
        let raw_count = deps.len();
        let mut seen = DedupIndex::default();
        let mut kept: Vec<LockDep> = Vec::with_capacity(deps.len());
        for d in deps {
            if !d.lockset.is_empty() && seen.is_new(&kept, &d) {
                kept.push(d);
            }
        }
        LockDependencyRelation {
            deps: kept,
            timings: Vec::new(),
            raw_count,
        }
    }

    /// Like [`Self::from_deps`], with the dedup sharded across `jobs`
    /// worker threads by tuple hash (`0` = one worker per core).
    ///
    /// Duplicates of a tuple share its hash and therefore its shard, so
    /// each shard sees every occurrence of the tuples it owns and keeps
    /// exactly the first; the merge is a sorted union of first-occurrence
    /// indices. The result is **identical** to the sequential dedup —
    /// same tuples, same order, same serialized bytes — which is what
    /// lets a fleet-merge of per-client relations finalize in parallel
    /// without perturbing downstream cycle reports.
    pub fn from_deps_jobs(deps: Vec<LockDep>, jobs: usize) -> Self {
        let workers = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        if workers <= 1 || deps.len() < PARALLEL_DEDUP_MIN {
            return Self::from_deps(deps);
        }
        let raw_count = deps.len();
        // Empty-lockset tuples are dropped before dedup, exactly as the
        // sequential path does.
        let candidates: Vec<LockDep> = deps.into_iter().filter(|d| !d.lockset.is_empty()).collect();
        // Pass 1: hash every tuple, chunked across the workers.
        let mut hashes = vec![0u64; candidates.len()];
        let chunk = candidates.len().div_ceil(workers).max(1);
        std::thread::scope(|s| {
            for (slot, tuples) in hashes.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
                s.spawn(move || {
                    for (h, d) in slot.iter_mut().zip(tuples) {
                        *h = DedupIndex::hash_of(d);
                    }
                });
            }
        });
        // Pass 2: shard `s` dedups the tuples whose hash lands in its
        // bucket, walking in index order so it keeps first occurrences;
        // hash collisions across distinct tuples fall back to the same
        // exact compare the sequential DedupIndex uses.
        let shards = workers as u64;
        let mut kept_idx: Vec<u32> = std::thread::scope(|s| {
            // The intermediate Vec is what makes the shards concurrent:
            // fusing spawn and join into one iterator chain would join
            // each handle before spawning the next.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    let hashes = &hashes;
                    let candidates = &candidates;
                    s.spawn(move || {
                        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                        let mut kept: Vec<u32> = Vec::new();
                        for (i, d) in candidates.iter().enumerate() {
                            let h = hashes[i];
                            if h % shards != shard as u64 {
                                continue;
                            }
                            let ids = buckets.entry(h).or_default();
                            if ids.iter().any(|&j| &candidates[j as usize] == d) {
                                continue;
                            }
                            let idx = u32::try_from(i).expect("relation fits u32");
                            ids.push(idx);
                            kept.push(idx);
                        }
                        kept
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("dedup shard panicked"))
                .collect()
        });
        kept_idx.sort_unstable();
        let mut keep = vec![false; candidates.len()];
        for &i in &kept_idx {
            keep[i as usize] = true;
        }
        let kept: Vec<LockDep> = candidates
            .into_iter()
            .zip(keep)
            .filter_map(|(d, k)| k.then_some(d))
            .collect();
        LockDependencyRelation {
            deps: kept,
            timings: Vec::new(),
            raw_count,
        }
    }

    /// The deduplicated tuples.
    pub fn deps(&self) -> &[LockDep] {
        &self.deps
    }

    /// Hold-window timing of tuple `i`, if the relation came from a trace.
    pub fn timing(&self, i: usize) -> Option<DepTiming> {
        self.timings.get(i).copied()
    }

    /// Number of deduplicated tuples.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Distinct threads appearing in the relation.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut ts: Vec<ThreadId> = self.deps.iter().map(|d| d.thread).collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Distinct locks appearing in the relation (acquired or held).
    pub fn locks(&self) -> Vec<ObjId> {
        let mut ls: Vec<ObjId> = self
            .deps
            .iter()
            .flat_map(|d| d.lockset.iter().copied().chain(std::iter::once(d.lock)))
            .collect();
        ls.sort();
        ls.dedup();
        ls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::{EventKind, Label, ObjKind};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// A trace where T1 acquires (A then B) and T2 acquires (B then A).
    fn opposite_order_trace() -> Trace {
        let mut trace = Trace::new();
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        let o1 = trace
            .objects_mut()
            .create(ObjKind::Thread, l("spawn:1"), None, vec![]);
        let o2 = trace
            .objects_mut()
            .create(ObjKind::Thread, l("spawn:2"), None, vec![]);
        trace.bind_thread(t1, o1);
        trace.bind_thread(t2, o2);
        let a = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:22"), None, vec![]);
        let b = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:23"), None, vec![]);
        trace.push(
            t1,
            EventKind::acquire(a, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t1,
            EventKind::acquire(b, l("run:16"), vec![a], vec![l("run:15"), l("run:16")]),
        );
        trace.push(t1, EventKind::release(b, l("run:17")));
        trace.push(t1, EventKind::release(a, l("run:18")));
        trace.push(
            t2,
            EventKind::acquire(b, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t2,
            EventKind::acquire(a, l("run:16"), vec![b], vec![l("run:15"), l("run:16")]),
        );
        trace
    }

    #[test]
    fn extracts_nested_acquisitions_only() {
        let trace = opposite_order_trace();
        let rel = LockDependencyRelation::from_trace(&trace);
        // 4 acquires observed, 2 with non-empty locksets.
        assert_eq!(rel.raw_count, 4);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.threads().len(), 2);
        assert_eq!(rel.locks().len(), 2);
        for dep in rel.deps() {
            assert_eq!(dep.lockset.len(), 1);
            assert_eq!(dep.contexts.len(), 2);
            assert_eq!(dep.acquire_site(), l("run:16"));
            assert!(dep.holds(dep.lockset[0]));
            assert!(!dep.holds(dep.lock));
        }
    }

    #[test]
    fn duplicate_tuples_are_removed() {
        let trace = opposite_order_trace();
        let rel1 = LockDependencyRelation::from_trace(&trace);
        // Duplicate every event.
        let mut trace2 = opposite_order_trace();
        let events: Vec<_> = trace2.events().to_vec();
        for e in events {
            trace2.push(e.thread, e.kind.clone());
        }
        let rel2 = LockDependencyRelation::from_trace(&trace2);
        assert_eq!(rel1.len(), rel2.len());
        assert_eq!(rel2.raw_count, 8);
    }

    #[test]
    fn from_deps_filters_empty_locksets() {
        let dep = LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(0),
            vec![],
            ObjId::new(5),
            vec![l("x:1")],
        );
        let rel = LockDependencyRelation::from_deps(vec![dep]);
        assert!(rel.is_empty());
        assert_eq!(rel.raw_count, 1);
    }

    #[test]
    fn serde_round_trip() {
        let rel = LockDependencyRelation::from_trace(&opposite_order_trace());
        let json = serde_json::to_string(&rel).unwrap();
        let back: LockDependencyRelation = serde_json::from_str(&json).unwrap();
        assert_eq!(rel, back);
    }

    #[test]
    fn exclusive_deps_serialize_without_mode_fields() {
        let dep = LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(0),
            vec![ObjId::new(4)],
            ObjId::new(5),
            vec![l("x:1"), l("x:2")],
        );
        let json = serde_json::to_string(&dep).unwrap();
        assert!(!json.contains("mode"), "{json}");
        // A pre-mode artifact tuple deserializes with exclusive defaults.
        let back: LockDep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dep);
        assert_eq!(back.hold_modes, vec![AcquireMode::Exclusive]);
    }

    #[test]
    fn shared_deps_round_trip_their_modes() {
        let mut dep = LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(0),
            vec![ObjId::new(4), ObjId::new(6)],
            ObjId::new(5),
            vec![l("x:1"), l("x:2"), l("x:3")],
        );
        dep.mode = AcquireMode::Shared;
        dep.hold_modes[1] = AcquireMode::Shared;
        let json = serde_json::to_string(&dep).unwrap();
        assert!(json.contains("\"mode\":\"Shared\""), "{json}");
        assert!(json.contains("hold_modes"), "{json}");
        let back: LockDep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dep);
        assert_eq!(back.hold_mode_of(ObjId::new(6)), Some(AcquireMode::Shared));
        assert_eq!(
            back.hold_mode_of(ObjId::new(4)),
            Some(AcquireMode::Exclusive)
        );
        assert_eq!(back.hold_mode_of(ObjId::new(9)), None);
        // read acquire vs read hold: no block; vs write hold: blocks.
        assert!(!back.hold_blocks(ObjId::new(6), AcquireMode::Shared));
        assert!(back.hold_blocks(ObjId::new(4), AcquireMode::Shared));
        assert!(back.hold_blocks(ObjId::new(6), AcquireMode::Exclusive));
    }

    /// A tuple soup with heavy duplication, empty locksets, and shared
    /// modes — everything the dedup has to get right.
    fn dup_heavy_deps(n: u32) -> Vec<LockDep> {
        (0..n)
            .map(|i| {
                let t = 1 + i % 7;
                let held = i % 13;
                let lock = 20 + i % 11;
                let mut d = LockDep::exclusive(
                    ThreadId::new(t),
                    ObjId::new(t),
                    if i % 17 == 0 {
                        vec![]
                    } else {
                        vec![ObjId::new(100 + held)]
                    },
                    ObjId::new(100 + lock),
                    vec![l(&format!("s:{}", i % 5)), l(&format!("s:{}", i % 3))],
                );
                if i % 4 == 0 {
                    d.mode = AcquireMode::Shared;
                }
                d
            })
            .collect()
    }

    #[test]
    fn sharded_dedup_matches_sequential_byte_for_byte() {
        for n in [10, 255, 256, 2000] {
            let seq = LockDependencyRelation::from_deps(dup_heavy_deps(n));
            for jobs in [0, 1, 2, 3, 4, 8] {
                let par = LockDependencyRelation::from_deps_jobs(dup_heavy_deps(n), jobs);
                assert_eq!(par, seq, "n={n} jobs={jobs}");
                assert_eq!(
                    serde_json::to_string(&par).unwrap(),
                    serde_json::to_string(&seq).unwrap(),
                    "n={n} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn modes_conflict_only_spares_read_read() {
        use AcquireMode::{Exclusive, Shared};
        assert!(modes_conflict(Exclusive, Exclusive));
        assert!(modes_conflict(Exclusive, Shared));
        assert!(modes_conflict(Shared, Exclusive));
        assert!(!modes_conflict(Shared, Shared));
    }
}
