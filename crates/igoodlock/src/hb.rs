//! Happens-before filtering of potential deadlock cycles.
//!
//! iGoodlock deliberately ignores the happens-before relation — that is
//! what gives it predictive power (§1 of the paper) — but it is also the
//! sole source of its false positives (§5.4: the Jigsaw `CachedThread`
//! cycles "can occur only if a CachedThread invokes its waitForRunner()
//! method before that CachedThread has been started", which thread-start
//! ordering forbids).
//!
//! This module implements the improvement explored by the generalized
//! Goodlock line of work (Agarwal–Wang–Stoller; Bensalem–Havelund): a
//! *conservative* happens-before filter over the **fork/join order only**.
//! Lock-release→acquire edges are intentionally *not* included — ordering
//! every critical section by the observed schedule would collapse the
//! analysis onto the single observed interleaving and destroy its
//! predictive power; fork/join edges, in contrast, hold in *every*
//! execution.
//!
//! A cycle is pruned when two of its components' *hold windows* — the
//! span from the innermost held-lock acquisition to the blocked
//! acquisition — are ordered by fork/join happens-before: such windows
//! can never overlap in any execution, so the deadlock state is
//! unreachable.

use std::collections::HashMap;

use df_events::{EventKind, ThreadId, Trace};

use crate::cycle::Cycle;
use crate::relation::DepTiming;

/// A vector clock: one logical-time component per thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    fn tick(&mut self, t: usize) {
        if self.entries.len() <= t {
            self.entries.resize(t + 1, 0);
        }
        self.entries[t] += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if self.entries[i] < v {
                self.entries[i] = v;
            }
        }
    }

    /// Whether `self ≤ other` componentwise (self happens-before-or-equal
    /// other).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.entries.get(i).copied().unwrap_or(0))
    }
}

/// Precomputed fork/join happens-before clocks for every event of a
/// trace.
///
/// # Example
///
/// ```
/// use df_events::Trace;
/// use df_igoodlock::HbFilter;
///
/// let trace = Trace::default();
/// let filter = HbFilter::from_trace(&trace);
/// assert_eq!(filter.len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct HbFilter {
    /// Clock of each event, indexed by event sequence number.
    clocks: Vec<VectorClock>,
}

impl HbFilter {
    /// Computes fork/join vector clocks for `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let threads = trace.threads();
        let n = threads.iter().map(|t| t.as_usize() + 1).max().unwrap_or(0);
        let mut current: HashMap<ThreadId, VectorClock> = HashMap::new();
        // Clock transferred from a spawn event to the child's start.
        let mut pending_start: HashMap<ThreadId, VectorClock> = HashMap::new();
        // Clock at each thread's exit, consumed by joiners.
        let mut at_exit: HashMap<ThreadId, VectorClock> = HashMap::new();
        let mut clocks = Vec::with_capacity(trace.events().len());
        for event in trace.events() {
            let t = event.thread;
            let entry = current.entry(t).or_insert_with(|| VectorClock::new(n));
            entry.tick(t.as_usize());
            match &event.kind {
                EventKind::Spawn { child, .. } => {
                    pending_start.insert(*child, entry.clone());
                }
                EventKind::ThreadStart => {
                    if let Some(parent_clock) = pending_start.remove(&t) {
                        entry.join(&parent_clock);
                    }
                }
                EventKind::ThreadExit => {
                    at_exit.insert(t, entry.clone());
                }
                EventKind::Join { target } => {
                    if let Some(exit_clock) = at_exit.get(target) {
                        let exit_clock = exit_clock.clone();
                        entry.join(&exit_clock);
                    }
                }
                _ => {}
            }
            clocks.push(current[&t].clone());
        }
        HbFilter { clocks }
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the filter covers no events.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Clock of event `seq`.
    fn clock(&self, seq: u64) -> Option<&VectorClock> {
        self.clocks.get(usize::try_from(seq).ok()?)
    }

    /// Whether event `a` happens-before event `b` under fork/join order
    /// (strictly: `a`'s clock ≤ `b`'s and they are distinct events).
    pub fn happens_before(&self, a: u64, b: u64) -> bool {
        match (self.clock(a), self.clock(b)) {
            (Some(ca), Some(cb)) => a != b && ca.leq(cb),
            _ => false,
        }
    }

    /// Whether two hold windows may overlap in *some* execution
    /// consistent with fork/join order: neither window ends
    /// happens-before the other begins.
    pub fn windows_may_overlap(&self, a: &DepTiming, b: &DepTiming) -> bool {
        !(self.happens_before(a.acquire_seq, b.window_start_seq)
            || self.happens_before(b.acquire_seq, a.window_start_seq))
    }

    /// Whether a cycle is feasible: every pair of component hold windows
    /// may overlap. Requires the timings recorded with the relation the
    /// cycle came from.
    pub fn cycle_feasible(&self, cycle: &Cycle, timings: &[DepTiming]) -> bool {
        debug_assert_eq!(cycle.components().len(), timings.len());
        for i in 0..timings.len() {
            for j in (i + 1)..timings.len() {
                if !self.windows_may_overlap(&timings[i], &timings[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::{Label, ObjKind};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// main spawns A; A exits; main joins A; main spawns B.
    /// Events of A happen-before events of B.
    fn forked_trace() -> Trace {
        let mut trace = Trace::new();
        let main = ThreadId::new(0);
        let a = ThreadId::new(1);
        let b = ThreadId::new(2);
        for (t, site) in [(main, "<main>"), (a, "spawn:a"), (b, "spawn:b")] {
            let obj = trace
                .objects_mut()
                .create(ObjKind::Thread, l(site), None, vec![]);
            trace.bind_thread(t, obj);
        }
        trace.push(main, EventKind::ThreadStart); // 0
        trace.push(
            main,
            EventKind::Spawn {
                child: a,
                child_obj: trace.thread_obj(a).unwrap(),
            },
        ); // 1
        trace.push(a, EventKind::ThreadStart); // 2
        trace.push(a, EventKind::Yield); // 3
        trace.push(a, EventKind::ThreadExit); // 4
        trace.push(main, EventKind::Join { target: a }); // 5
        trace.push(
            main,
            EventKind::Spawn {
                child: b,
                child_obj: trace.thread_obj(b).unwrap(),
            },
        ); // 6
        trace.push(b, EventKind::ThreadStart); // 7
        trace.push(b, EventKind::Yield); // 8
        trace.push(b, EventKind::ThreadExit); // 9
        trace
    }

    #[test]
    fn fork_edge_orders_parent_before_child() {
        let trace = forked_trace();
        let hb = HbFilter::from_trace(&trace);
        assert!(hb.happens_before(1, 2), "spawn before child's start");
        assert!(hb.happens_before(0, 3), "parent prefix before child event");
        assert!(!hb.happens_before(3, 0), "no reverse edge");
    }

    #[test]
    fn join_edge_orders_child_before_joiner_suffix() {
        let trace = forked_trace();
        let hb = HbFilter::from_trace(&trace);
        assert!(hb.happens_before(3, 5), "A's events before the join");
        assert!(
            hb.happens_before(3, 8),
            "A's events before B's (join+spawn)"
        );
        assert!(!hb.happens_before(5, 3));
    }

    #[test]
    fn concurrent_threads_are_unordered() {
        // main spawns A and B without joining in between.
        let mut trace = Trace::new();
        let main = ThreadId::new(0);
        let a = ThreadId::new(1);
        let b = ThreadId::new(2);
        for (t, site) in [(main, "<main>"), (a, "s:a"), (b, "s:b")] {
            let obj = trace
                .objects_mut()
                .create(ObjKind::Thread, l(site), None, vec![]);
            trace.bind_thread(t, obj);
        }
        trace.push(main, EventKind::ThreadStart); // 0
        trace.push(
            main,
            EventKind::Spawn {
                child: a,
                child_obj: trace.thread_obj(a).unwrap(),
            },
        ); // 1
        trace.push(
            main,
            EventKind::Spawn {
                child: b,
                child_obj: trace.thread_obj(b).unwrap(),
            },
        ); // 2
        trace.push(a, EventKind::ThreadStart); // 3
        trace.push(b, EventKind::ThreadStart); // 4
        trace.push(a, EventKind::Yield); // 5
        trace.push(b, EventKind::Yield); // 6
        let hb = HbFilter::from_trace(&trace);
        assert!(!hb.happens_before(5, 6));
        assert!(!hb.happens_before(6, 5));
        assert!(hb.happens_before(1, 5));
        assert!(hb.happens_before(2, 6));
    }

    #[test]
    fn window_overlap_respects_ordering() {
        let trace = forked_trace();
        let hb = HbFilter::from_trace(&trace);
        // A's window (events 2..4) vs B's window (events 7..9): ordered.
        let wa = DepTiming {
            window_start_seq: 2,
            acquire_seq: 4,
        };
        let wb = DepTiming {
            window_start_seq: 7,
            acquire_seq: 9,
        };
        assert!(!hb.windows_may_overlap(&wa, &wb));
        // A window vs main's own early window: main 0..1 precedes A.
        let wmain = DepTiming {
            window_start_seq: 0,
            acquire_seq: 1,
        };
        assert!(!hb.windows_may_overlap(&wmain, &wa));
        // Identical windows trivially may overlap.
        assert!(hb.windows_may_overlap(&wa, &wa));
    }

    #[test]
    fn empty_trace_is_fine() {
        let hb = HbFilter::from_trace(&Trace::default());
        assert!(hb.is_empty());
        assert!(!hb.happens_before(0, 1));
    }
}
