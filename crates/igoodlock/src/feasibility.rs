//! Sync-preserving partial-order feasibility scoring of predicted cycles.
//!
//! iGoodlock predicts cycles from lockset overlap alone, which is what
//! gives it predictive power — and what makes some predictions
//! unrealizable. The happens-before filter ([`crate::HbFilter`]) already
//! *prunes* cycles whose hold windows are ordered by fork/join edges;
//! this module layers a *scoring* pass on top of it, in the spirit of the
//! sync-preserving partial-order deadlock predictors: every predicted
//! cycle gets a verdict — [`Feasible`](FeasibilityVerdict::Feasible),
//! [`Infeasible`](FeasibilityVerdict::Infeasible), or
//! [`Unknown`](FeasibilityVerdict::Unknown) — plus a numeric score in
//! `[0, 1]` estimating how likely an active scheduler is to realize the
//! deadlock state.
//!
//! The verdicts are deliberately asymmetric in strength:
//!
//! * `Infeasible` is **sound**: it is produced only when two hold windows
//!   are ordered by fork/join happens-before, an ordering that holds in
//!   *every* execution of the program, not just the observed one. An
//!   infeasible cycle can therefore never be confirmed by any trial, and
//!   an allocator may skip it outright.
//! * `Feasible` is a *heuristic*: the windows may overlap under fork/join
//!   order, and the score ranks how close the observed schedule already
//!   came to overlapping them (observed window overlap, window gaps
//!   normalized by trace length, cycle width).
//! * `Unknown` means the relation carries no hold-window timings (it was
//!   built from bare tuples or merged from a fleet), so nothing can be
//!   said; the neutral score `0.5` keeps such cycles in the middle of
//!   any priority order.

use std::collections::HashMap;
use std::fmt;

use df_events::Trace;
use serde::{Deserialize, Serialize};

use crate::cycle::Cycle;
use crate::hb::HbFilter;
use crate::relation::{DepTiming, LockDep, LockDependencyRelation};

/// The qualitative outcome of the feasibility check for one cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FeasibilityVerdict {
    /// The hold windows may overlap in some execution consistent with
    /// fork/join order; the deadlock state is reachable as far as the
    /// partial order can tell.
    Feasible,
    /// Two hold windows are ordered by fork/join happens-before — an
    /// ordering that holds in every execution — so the deadlock state is
    /// provably unreachable and no trial can ever confirm the cycle.
    Infeasible,
    /// The relation carries no hold-window timings for this cycle (bare
    /// tuples, fleet merges, streamed Phase I), so feasibility cannot be
    /// judged.
    Unknown,
}

impl fmt::Display for FeasibilityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FeasibilityVerdict::Feasible => "Feasible",
            FeasibilityVerdict::Infeasible => "Infeasible",
            FeasibilityVerdict::Unknown => "Unknown",
        })
    }
}

/// The feasibility judgement for one predicted cycle: the verdict plus a
/// deterministic score in `[0, 1]` (0 = provably infeasible, 0.5 =
/// unknown, higher = the observed schedule came closer to overlapping
/// every pair of hold windows).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CycleFeasibility {
    /// Index of the cycle in the Phase I report it was scored from.
    pub cycle_index: usize,
    /// The qualitative verdict.
    pub verdict: FeasibilityVerdict,
    /// The numeric score in `[0, 1]` used to seed trial allocation.
    pub score: f64,
}

impl fmt::Display for CycleFeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (score {:.2})", self.verdict, self.score)
    }
}

/// Floor for feasible scores: even the coldest feasible cycle keeps a
/// nonzero priority so an adaptive allocator cannot starve it entirely.
const MIN_FEASIBLE_SCORE: f64 = 0.05;

/// The neutral score assigned to [`FeasibilityVerdict::Unknown`] cycles.
const UNKNOWN_SCORE: f64 = 0.5;

/// One-shot feasibility analysis of a Phase I run: fork/join vector
/// clocks from the trace plus a tuple→timing index from the relation.
///
/// # Example
///
/// ```
/// use df_events::Trace;
/// use df_igoodlock::{FeasibilityAnalysis, LockDependencyRelation};
///
/// let trace = Trace::default();
/// let relation = LockDependencyRelation::from_trace(&trace);
/// let analysis = FeasibilityAnalysis::new(&trace, &relation);
/// assert!(analysis.score_cycles(&[]).is_empty());
/// ```
pub struct FeasibilityAnalysis {
    hb: HbFilter,
    /// Timing of each deduplicated tuple, keyed by the tuple itself so a
    /// cycle component (which carries identical fields) can find it.
    timing_of: HashMap<LockDep, DepTiming>,
    /// Observed trace length, the normalizer for window gaps.
    trace_len: u64,
}

impl FeasibilityAnalysis {
    /// Builds the analysis from the observed trace and its relation.
    pub fn new(trace: &Trace, relation: &LockDependencyRelation) -> Self {
        let mut timing_of = HashMap::with_capacity(relation.len());
        for (i, dep) in relation.deps().iter().enumerate() {
            if let Some(t) = relation.timing(i) {
                timing_of.insert(dep.clone(), t);
            }
        }
        FeasibilityAnalysis {
            hb: HbFilter::from_trace(trace),
            timing_of,
            trace_len: trace.events().len() as u64,
        }
    }

    /// Scores every cycle of a Phase I report, in report order.
    pub fn score_cycles(&self, cycles: &[Cycle]) -> Vec<CycleFeasibility> {
        cycles
            .iter()
            .enumerate()
            .map(|(i, c)| self.score_cycle(i, c))
            .collect()
    }

    /// Scores one cycle. `cycle_index` is echoed into the result so the
    /// judgement stays attached to its report entry.
    pub fn score_cycle(&self, cycle_index: usize, cycle: &Cycle) -> CycleFeasibility {
        let timings: Option<Vec<DepTiming>> = cycle
            .components()
            .iter()
            .map(|c| {
                let dep = LockDep {
                    thread: c.thread,
                    thread_obj: c.thread_obj,
                    lockset: c.lockset.clone(),
                    lock: c.lock,
                    contexts: c.contexts.clone(),
                    mode: c.mode,
                    hold_modes: c.hold_modes.clone(),
                };
                self.timing_of.get(&dep).copied()
            })
            .collect();
        let Some(timings) = timings else {
            return CycleFeasibility {
                cycle_index,
                verdict: FeasibilityVerdict::Unknown,
                score: UNKNOWN_SCORE,
            };
        };
        if timings.is_empty() || self.trace_len == 0 {
            return CycleFeasibility {
                cycle_index,
                verdict: FeasibilityVerdict::Unknown,
                score: UNKNOWN_SCORE,
            };
        }

        // Sound pruning first: any fork/join-ordered window pair makes
        // the deadlock state unreachable in every execution.
        let mut overlap_frac_sum = 0.0;
        let mut gap_norm_sum = 0.0;
        let mut pairs = 0u32;
        for i in 0..timings.len() {
            for j in (i + 1)..timings.len() {
                let (a, b) = (&timings[i], &timings[j]);
                if !self.hb.windows_may_overlap(a, b) {
                    return CycleFeasibility {
                        cycle_index,
                        verdict: FeasibilityVerdict::Infeasible,
                        score: 0.0,
                    };
                }
                pairs += 1;
                let lo = a.window_start_seq.max(b.window_start_seq);
                let hi = a.acquire_seq.min(b.acquire_seq);
                if hi >= lo {
                    // The observed schedule already overlapped these
                    // windows; rate the overlap against the shorter one.
                    let shortest = (a.acquire_seq - a.window_start_seq)
                        .min(b.acquire_seq - b.window_start_seq)
                        .max(1);
                    overlap_frac_sum += ((hi - lo) as f64 / shortest as f64).min(1.0);
                } else {
                    // Observed windows were disjoint: the wider the gap
                    // relative to the trace, the colder the cycle.
                    gap_norm_sum += (lo - hi) as f64 / self.trace_len as f64;
                }
            }
        }
        let pairs_f = f64::from(pairs);
        let overlap_frac = overlap_frac_sum / pairs_f;
        let avg_gap_norm = gap_norm_sum / pairs_f;
        // Base optimism 0.55 (the scheduler actively steers toward the
        // windows), raised by observed overlap, lowered by observed gaps,
        // and diluted for wide cycles (all n windows must meet at once).
        let width_factor = 2.0 / cycle.len() as f64;
        let score = ((0.55 + 0.45 * overlap_frac - 0.25 * avg_gap_norm) * width_factor)
            .clamp(MIN_FEASIBLE_SCORE, 1.0);
        CycleFeasibility {
            cycle_index,
            verdict: FeasibilityVerdict::Feasible,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleComponent;
    use df_events::{EventKind, Label, ObjKind, ThreadId};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// Two threads running concurrently (no join between them) that
    /// acquire {a, b} in opposite nested order — Figure 1 in miniature.
    fn concurrent_cycle_trace() -> Trace {
        let mut trace = Trace::new();
        let main = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        for (t, site) in [(main, "<main>"), (t1, "spawn:1"), (t2, "spawn:2")] {
            let obj = trace
                .objects_mut()
                .create(ObjKind::Thread, l(site), None, vec![]);
            trace.bind_thread(t, obj);
        }
        let a = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:22"), None, vec![]);
        let b = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:23"), None, vec![]);
        trace.push(main, EventKind::ThreadStart);
        for t in [t1, t2] {
            trace.push(
                main,
                EventKind::Spawn {
                    child: t,
                    child_obj: trace.thread_obj(t).unwrap(),
                },
            );
        }
        trace.push(t1, EventKind::ThreadStart);
        trace.push(t2, EventKind::ThreadStart);
        trace.push(
            t1,
            EventKind::acquire(a, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t1,
            EventKind::acquire(b, l("run:16"), vec![a], vec![l("run:15"), l("run:16")]),
        );
        trace.push(t1, EventKind::release(b, l("run:17")));
        trace.push(t1, EventKind::release(a, l("run:18")));
        trace.push(
            t2,
            EventKind::acquire(b, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t2,
            EventKind::acquire(a, l("run:16"), vec![b], vec![l("run:15"), l("run:16")]),
        );
        trace
    }

    /// The same opposite-order acquisitions, but the first thread is
    /// joined before the second is spawned: the hold windows are ordered
    /// by fork/join happens-before in every execution.
    fn ordered_cycle_trace() -> Trace {
        let mut trace = Trace::new();
        let main = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        for (t, site) in [(main, "<main>"), (t1, "spawn:1"), (t2, "spawn:2")] {
            let obj = trace
                .objects_mut()
                .create(ObjKind::Thread, l(site), None, vec![]);
            trace.bind_thread(t, obj);
        }
        let a = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:22"), None, vec![]);
        let b = trace
            .objects_mut()
            .create(ObjKind::Lock, l("main:23"), None, vec![]);
        trace.push(main, EventKind::ThreadStart);
        trace.push(
            main,
            EventKind::Spawn {
                child: t1,
                child_obj: trace.thread_obj(t1).unwrap(),
            },
        );
        trace.push(t1, EventKind::ThreadStart);
        trace.push(
            t1,
            EventKind::acquire(a, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t1,
            EventKind::acquire(b, l("run:16"), vec![a], vec![l("run:15"), l("run:16")]),
        );
        trace.push(t1, EventKind::release(b, l("run:17")));
        trace.push(t1, EventKind::release(a, l("run:18")));
        trace.push(t1, EventKind::ThreadExit);
        trace.push(main, EventKind::Join { target: t1 });
        trace.push(
            main,
            EventKind::Spawn {
                child: t2,
                child_obj: trace.thread_obj(t2).unwrap(),
            },
        );
        trace.push(t2, EventKind::ThreadStart);
        trace.push(
            t2,
            EventKind::acquire(b, l("run:15"), vec![], vec![l("run:15")]),
        );
        trace.push(
            t2,
            EventKind::acquire(a, l("run:16"), vec![b], vec![l("run:15"), l("run:16")]),
        );
        trace
    }

    /// The predicted cycle of either trace, built from the relation's own
    /// tuples so the analysis can map components back to timings.
    fn cycle_of(relation: &LockDependencyRelation) -> Cycle {
        let deps = relation.deps();
        assert_eq!(deps.len(), 2, "the test traces have exactly two tuples");
        Cycle::new(vec![
            CycleComponent::from(&deps[0]),
            CycleComponent::from(&deps[1]),
        ])
    }

    #[test]
    fn concurrent_opposite_order_scores_feasible() {
        let trace = concurrent_cycle_trace();
        let relation = LockDependencyRelation::from_trace(&trace);
        let analysis = FeasibilityAnalysis::new(&trace, &relation);
        let fs = analysis.score_cycles(&[cycle_of(&relation)]);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].cycle_index, 0);
        assert_eq!(fs[0].verdict, FeasibilityVerdict::Feasible);
        assert!(
            fs[0].score >= MIN_FEASIBLE_SCORE && fs[0].score <= 1.0,
            "{}",
            fs[0].score
        );
    }

    #[test]
    fn fork_join_ordered_windows_score_infeasible() {
        let trace = ordered_cycle_trace();
        let relation = LockDependencyRelation::from_trace(&trace);
        let analysis = FeasibilityAnalysis::new(&trace, &relation);
        let f = analysis.score_cycle(3, &cycle_of(&relation));
        assert_eq!(f.cycle_index, 3);
        assert_eq!(f.verdict, FeasibilityVerdict::Infeasible);
        assert_eq!(f.score, 0.0);
    }

    #[test]
    fn relation_without_timings_scores_unknown() {
        let trace = concurrent_cycle_trace();
        let with_timings = LockDependencyRelation::from_trace(&trace);
        // Rebuild from bare tuples: same cycle, no timings.
        let bare = LockDependencyRelation::from_deps(with_timings.deps().to_vec());
        assert!(bare.timing(0).is_none());
        let analysis = FeasibilityAnalysis::new(&trace, &bare);
        let f = analysis.score_cycle(0, &cycle_of(&bare));
        assert_eq!(f.verdict, FeasibilityVerdict::Unknown);
        assert_eq!(f.score, UNKNOWN_SCORE);
    }

    #[test]
    fn scoring_is_deterministic() {
        let trace = concurrent_cycle_trace();
        let relation = LockDependencyRelation::from_trace(&trace);
        let cycle = cycle_of(&relation);
        let a = FeasibilityAnalysis::new(&trace, &relation).score_cycle(0, &cycle);
        let b = FeasibilityAnalysis::new(&trace, &relation).score_cycle(0, &cycle);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn verdicts_render_and_round_trip() {
        let f = CycleFeasibility {
            cycle_index: 2,
            verdict: FeasibilityVerdict::Infeasible,
            score: 0.0,
        };
        assert_eq!(f.to_string(), "Infeasible (score 0.00)");
        let json = serde_json::to_string(&f).unwrap();
        let back: CycleFeasibility = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        assert_eq!(FeasibilityVerdict::Feasible.to_string(), "Feasible");
        assert_eq!(FeasibilityVerdict::Unknown.to_string(), "Unknown");
    }
}
