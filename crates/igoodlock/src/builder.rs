//! Incremental (streaming) construction of the lock dependency relation.
//!
//! Algorithm 2 of the paper computes the relation *during* execution; a
//! [`RelationBuilder`] is that computation factored out of
//! [`LockDependencyRelation::from_trace`] so it can also run online,
//! fed one event at a time through the [`df_events::EventSink`]
//! interface. The offline path delegates to this builder, which is what
//! makes the streamed and trace-based relations byte-identical by
//! construction — there is exactly one implementation of Definition 1.

use std::collections::{BTreeMap, HashMap};

use df_events::{AcquireMode, Event, EventKind, EventSink, ObjId, ThreadId, Trace};

use crate::relation::{DedupIndex, DepTiming, LockDep, LockDependencyRelation};

/// Builds a [`LockDependencyRelation`] one event at a time.
///
/// Feed it thread bindings ([`RelationBuilder::bind_thread`]) and events
/// ([`RelationBuilder::observe`]) in execution order — or attach it to a
/// substrate as an [`EventSink`] — then call
/// [`RelationBuilder::finish`]. Memory is proportional to the
/// *deduplicated relation* plus the live lock stacks, never to the
/// length of the execution.
///
/// # Example
///
/// ```
/// use df_igoodlock::{LockDependencyRelation, RelationBuilder};
/// use df_events::Trace;
///
/// let trace = Trace::default();
/// let mut builder = RelationBuilder::new();
/// for event in trace.events() {
///     builder.observe(event);
/// }
/// assert_eq!(builder.finish(), LockDependencyRelation::from_trace(&trace));
/// ```
#[derive(Default)]
pub struct RelationBuilder {
    seen: DedupIndex,
    deps: Vec<LockDep>,
    timings: Vec<DepTiming>,
    raw_count: usize,
    /// Per-thread stack of (lock, acquire seq, mode) mirroring `held`,
    /// for hold-window starts and hold modes.
    stacks: HashMap<ThreadId, Vec<(ObjId, u64, AcquireMode)>>,
    thread_objs: BTreeMap<ThreadId, ObjId>,
}

impl RelationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the object representing `thread`. Substrates announce
    /// the binding before the thread's first event; the offline path
    /// replays a trace's binding table up front.
    pub fn bind_thread(&mut self, thread: ThreadId, obj: ObjId) {
        self.thread_objs.insert(thread, obj);
    }

    /// Feeds one event, in execution order.
    pub fn observe(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Acquire {
                lock,
                held,
                context,
                mode,
                ..
            } => {
                self.raw_count += 1;
                let stack = self.stacks.entry(event.thread).or_default();
                if !held.is_empty() {
                    // Hold modes come from the live stack, which mirrors
                    // `held` (same pushes, same rposition removals).
                    // Events replayed without matching stack state (bare
                    // tuples) default to exclusive holds.
                    let hold_modes: Vec<AcquireMode> = (0..held.len())
                        .map(|i| {
                            stack
                                .get(i)
                                .map(|&(_, _, m)| m)
                                .unwrap_or(AcquireMode::Exclusive)
                        })
                        .collect();
                    let dep = LockDep {
                        thread: event.thread,
                        thread_obj: self
                            .thread_objs
                            .get(&event.thread)
                            .copied()
                            .expect("trace binds every thread to its object"),
                        lockset: held.clone(),
                        lock: *lock,
                        contexts: context.clone(),
                        mode: *mode,
                        hold_modes,
                    };
                    if self.seen.is_new(&self.deps, &dep) {
                        self.timings.push(DepTiming {
                            window_start_seq: stack.last().map(|&(_, s, _)| s).unwrap_or(event.seq),
                            acquire_seq: event.seq,
                        });
                        self.deps.push(dep);
                    }
                }
                stack.push((*lock, event.seq, *mode));
            }
            // A successful try joins the held stack — later nested
            // acquires include it in their lockset — but records no
            // dependency tuple itself: a try never blocks, so it can
            // never be the blocked edge of a cycle. A failed try is a
            // no-op.
            EventKind::TryAcquire {
                lock,
                acquired: true,
                mode,
                ..
            } => {
                let stack = self.stacks.entry(event.thread).or_default();
                stack.push((*lock, event.seq, *mode));
            }
            EventKind::Release { lock, .. } => {
                let stack = self.stacks.entry(event.thread).or_default();
                if let Some(pos) = stack.iter().rposition(|&(l, _, _)| l == *lock) {
                    stack.remove(pos);
                }
            }
            // Condvar waits release and reacquire their lock through
            // ordinary Release/Acquire events emitted by the substrate;
            // the CondWait/CondNotify events themselves only mark the
            // communication edge and add nothing to Definition 1.
            _ => {}
        }
    }

    /// Number of deduplicated tuples so far.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether no tuple has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Number of raw (non-deduplicated) dependency tuples observed so far.
    pub fn raw_count(&self) -> usize {
        self.raw_count
    }

    /// Seals the builder into the finished relation.
    pub fn finish(self) -> LockDependencyRelation {
        LockDependencyRelation::from_parts(self.deps, self.timings, self.raw_count)
    }

    /// Takes the finished relation out of the builder, resetting it —
    /// the form needed when the builder is shared behind a sink handle
    /// and cannot be consumed by value.
    pub fn take(&mut self) -> LockDependencyRelation {
        std::mem::take(self).finish()
    }
}

impl EventSink for RelationBuilder {
    fn on_event(&mut self, event: &Event) {
        self.observe(event);
    }

    fn on_thread_bound(&mut self, thread: ThreadId, obj: ObjId) {
        self.bind_thread(thread, obj);
    }

    fn on_finish(&mut self, _trace: &Trace) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::Label;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// Builds the canonical opposite-order two-thread trace.
    fn opposite_order_trace() -> Trace {
        let mut trace = Trace::new();
        let t1 = ThreadId::new(1);
        let t2 = ThreadId::new(2);
        let o1 = trace
            .objects_mut()
            .create(df_events::ObjKind::Thread, l("spawn:1"), None, vec![]);
        let o2 = trace
            .objects_mut()
            .create(df_events::ObjKind::Thread, l("spawn:2"), None, vec![]);
        trace.bind_thread(t1, o1);
        trace.bind_thread(t2, o2);
        let a = trace
            .objects_mut()
            .create(df_events::ObjKind::Lock, l("main:22"), None, vec![]);
        let b = trace
            .objects_mut()
            .create(df_events::ObjKind::Lock, l("main:23"), None, vec![]);
        for (t, first, second) in [(t1, a, b), (t2, b, a)] {
            trace.push(
                t,
                EventKind::acquire(first, l("run:15"), vec![], vec![l("run:15")]),
            );
            trace.push(
                t,
                EventKind::acquire(
                    second,
                    l("run:16"),
                    vec![first],
                    vec![l("run:15"), l("run:16")],
                ),
            );
            trace.push(t, EventKind::release(second, l("run:17")));
            trace.push(t, EventKind::release(first, l("run:18")));
        }
        trace
    }

    /// Readers under a shared lock while a writer acquires it exclusively
    /// — exercises hold-mode bookkeeping and the try_lock stack effect.
    #[test]
    fn shared_holds_and_trys_shape_the_tuples() {
        let mut trace = Trace::new();
        let t1 = ThreadId::new(1);
        let o1 = trace
            .objects_mut()
            .create(df_events::ObjKind::Thread, l("spawn:1"), None, vec![]);
        trace.bind_thread(t1, o1);
        let rw = trace
            .objects_mut()
            .create(df_events::ObjKind::Lock, l("main:1"), None, vec![]);
        let m = trace
            .objects_mut()
            .create(df_events::ObjKind::Lock, l("main:2"), None, vec![]);
        // read(rw); try_lock(m) ok; acquire(inner) while holding both.
        let inner = trace
            .objects_mut()
            .create(df_events::ObjKind::Lock, l("main:3"), None, vec![]);
        trace.push(
            t1,
            EventKind::acquire(rw, l("r:1"), vec![], vec![l("r:1")]).shared(),
        );
        trace.push(t1, EventKind::try_acquire(m, l("r:2"), true));
        trace.push(t1, EventKind::try_acquire(inner, l("r:2b"), false));
        trace.push(
            t1,
            EventKind::acquire(
                inner,
                l("r:3"),
                vec![rw, m],
                vec![l("r:1"), l("r:2"), l("r:3")],
            ),
        );
        let rel = stream(&trace);
        // Only the nested Acquire records a tuple; the failed try added
        // nothing to the held stack.
        assert_eq!(rel.len(), 1);
        let dep = &rel.deps()[0];
        assert_eq!(dep.lockset, vec![rw, m]);
        assert_eq!(
            dep.hold_modes,
            vec![
                df_events::AcquireMode::Shared,
                df_events::AcquireMode::Exclusive
            ]
        );
        assert_eq!(dep.mode, df_events::AcquireMode::Exclusive);
    }

    fn stream(trace: &Trace) -> LockDependencyRelation {
        let mut b = RelationBuilder::new();
        for (t, o) in trace.thread_objs() {
            b.bind_thread(t, o);
        }
        for event in trace.events() {
            b.observe(event);
        }
        b.finish()
    }

    #[test]
    fn streaming_matches_offline_byte_for_byte() {
        let trace = opposite_order_trace();
        let offline = LockDependencyRelation::from_trace(&trace);
        let streamed = stream(&trace);
        assert_eq!(offline, streamed);
        assert_eq!(
            serde_json::to_string(&offline).unwrap(),
            serde_json::to_string(&streamed).unwrap()
        );
    }

    #[test]
    fn incremental_counters_track_progress() {
        let trace = opposite_order_trace();
        let mut b = RelationBuilder::new();
        for (t, o) in trace.thread_objs() {
            b.bind_thread(t, o);
        }
        assert!(b.is_empty());
        for event in trace.events() {
            b.observe(event);
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.raw_count(), 4);
        let rel = b.finish();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.raw_count, 4);
    }

    #[test]
    fn take_resets_the_builder() {
        let trace = opposite_order_trace();
        let mut b = RelationBuilder::new();
        for (t, o) in trace.thread_objs() {
            b.bind_thread(t, o);
        }
        for event in trace.events() {
            b.observe(event);
        }
        let rel = b.take();
        assert_eq!(rel.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.raw_count(), 0);
    }

    #[test]
    fn sink_interface_delivers_bindings_and_events() {
        let trace = opposite_order_trace();
        let mut b = RelationBuilder::new();
        {
            let sink: &mut dyn EventSink = &mut b;
            for (t, o) in trace.thread_objs() {
                sink.on_thread_bound(t, o);
            }
            for event in trace.events() {
                sink.on_event(event);
            }
            sink.on_finish(&Trace::new());
        }
        assert_eq!(b.take(), LockDependencyRelation::from_trace(&trace));
    }
}
