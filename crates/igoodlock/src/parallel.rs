//! Work-sharded parallel iGoodlock join with a deterministic merge.
//!
//! Algorithm 1 is breadth-iterative: every chain of length `k` exists
//! before any chain of length `k + 1`. Within one iteration the chains
//! are independent — extending chain `A` never reads chain `B` — so the
//! frontier can be partitioned across a worker pool. What is *not*
//! independent is everything the sequential loop threads through the
//! iteration: cycle dedup over projection-id vectors, the
//! `max_cycles` / `max_open_chains` truncation points, and the
//! [`IGoodlockStats`] counters. The contract of this module is that
//! `jobs=1` and `jobs=N` produce **byte-identical cycle reports and
//! identical stats**, so the split is:
//!
//! * **Workers** run the pure part: for each chain of their shard they
//!   walk the chain's candidate bucket (see [`crate::index`]) and record
//!   every accepted extension together with its 1-based position in the
//!   bucket, into a per-chain [`ChainOut`] held in a worker-local arena.
//! * **The merge** replays those records *in chain discovery order* —
//!   frontier order, the exact order the sequential loop visits — doing
//!   the stateful part: projection-id dedup, the happens-before filter,
//!   `chains_built` / `join_candidates_examined` accounting (recovered
//!   exactly from the recorded bucket positions, rejected candidates
//!   included), and the mid-iteration truncation returns at the same
//!   candidate the sequential join stops at.
//!
//! Workers and the sequential loop share [`IndexedChain::admits`] /
//! [`IndexedChain::extended`], so the two joins cannot drift: the
//! parallel join is the same join, minus the wall-clock.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::chains::{
    igoodlock_filtered, IGoodlockOptions, IGoodlockStats, IndexedChain, SMALL_RELATION_FAST_PATH,
};
use crate::cycle::{Cycle, CycleComponent};
use crate::hb::HbFilter;
use crate::index::JoinIndex;
use crate::relation::LockDependencyRelation;

/// Frontiers smaller than this are extended inline on the calling
/// thread: spawning costs more than the join saves.
const PARALLEL_FRONTIER_MIN: usize = 64;

/// Smallest number of chains claimed per task — keeps the claim counter
/// off the hot path.
const MIN_CHUNK: usize = 16;

/// Target tasks per worker and iteration; more tasks than workers lets
/// fast workers steal the slack of slow ones.
const CHUNKS_PER_WORKER: usize = 8;

/// Scheduling statistics of a parallel join — observability only.
///
/// Unlike [`IGoodlockStats`], these legitimately vary with `jobs` (and
/// with nothing else): task counts depend on how the frontier was
/// chunked, not on what was found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelJoinStats {
    /// Join tasks (frontier chunks, or whole inline frontiers) executed.
    pub tasks_executed: u64,
    /// Times a worker went back for more work and found the iteration's
    /// task queue drained.
    pub steal_waits: u64,
}

/// One accepted extension, recorded where the worker found it.
struct Accept {
    /// 1-based position of the accepted candidate in the chain's bucket
    /// — lets the merge recover the exact number of candidates the
    /// sequential loop would have examined (rejections included) up to
    /// any truncation point.
    examined_at: u64,
    /// Whether the extension closes into a cycle (Definition 3).
    closes: bool,
    ext: IndexedChain,
}

/// Everything a worker produced for one frontier chain.
struct ChainOut {
    /// Total candidates in the chain's bucket.
    bucket_len: u64,
    accepts: Vec<Accept>,
}

/// The pure per-chain work: walk the candidate bucket, record accepted
/// extensions with their bucket positions. No shared state.
fn extend_chain(chain: &IndexedChain, index: &JoinIndex) -> ChainOut {
    let cands = index.candidates(chain.last_lock, chain.last_mode);
    let mut accepts = Vec::new();
    for (pos, &cand) in cands.iter().enumerate() {
        if !chain.admits(cand as usize, index) {
            continue;
        }
        let ext = chain.extended(cand, index);
        let closes = index.closes_against(ext.deps[0] as usize, ext.last_lock, ext.last_mode);
        accepts.push(Accept {
            examined_at: pos as u64 + 1,
            closes,
            ext,
        });
    }
    ChainOut {
        bucket_len: cands.len() as u64,
        accepts,
    }
}

/// Extends every chain of `current`, fanning out across `workers`
/// scoped threads when the frontier is wide enough. Returns the
/// per-chain outputs **in frontier order** regardless of which worker
/// produced them — chunks are claimed off an atomic counter but land in
/// slots indexed by chunk, so the concatenation is deterministic.
fn fan_out(
    current: &[IndexedChain],
    index: &JoinIndex,
    workers: usize,
    pstats: &mut ParallelJoinStats,
) -> Vec<ChainOut> {
    if workers <= 1 || current.len() < PARALLEL_FRONTIER_MIN {
        pstats.tasks_executed += 1;
        return current.iter().map(|c| extend_chain(c, index)).collect();
    }
    let chunk = current
        .len()
        .div_ceil(workers * CHUNKS_PER_WORKER)
        .max(MIN_CHUNK);
    let n_chunks = current.len().div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);
    let drained = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<Vec<ChainOut>>>> =
        (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n_chunks) {
            s.spawn(|| loop {
                let k = next_chunk.fetch_add(1, Ordering::Relaxed);
                if k >= n_chunks {
                    drained.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let lo = k * chunk;
                let hi = (lo + chunk).min(current.len());
                let outs: Vec<ChainOut> = current[lo..hi]
                    .iter()
                    .map(|c| extend_chain(c, index))
                    .collect();
                *slots[k].lock().expect("no worker panicked holding a slot") = Some(outs);
            });
        }
    });
    pstats.tasks_executed += n_chunks as u64;
    pstats.steal_waits += drained.load(Ordering::Relaxed);
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding a slot")
                .expect("every chunk was claimed and completed")
        })
        .collect()
}

/// [`igoodlock_filtered`] fanned out over `jobs` worker threads, with a
/// deterministic merge: the returned cycles and [`IGoodlockStats`] are
/// identical — down to serialized bytes and truncation points — for
/// every `jobs` value, including 1. `jobs == 0` means one worker per
/// available core; `jobs <= 1` and relations below the small-relation
/// threshold delegate to the sequential join outright.
///
/// # Example
///
/// ```
/// use df_igoodlock::{
///     igoodlock_filtered, igoodlock_parallel, IGoodlockOptions, LockDep,
///     LockDependencyRelation,
/// };
/// use df_events::{Label, ObjId, ThreadId};
///
/// let dep = |t: u32, held: u32, lock: u32| {
///     LockDep::exclusive(
///         ThreadId::new(t),
///         ObjId::new(t),
///         vec![ObjId::new(held)],
///         ObjId::new(lock),
///         vec![Label::new("a:1"), Label::new("a:2")],
///     )
/// };
/// let rel = LockDependencyRelation::from_deps(vec![dep(1, 10, 11), dep(2, 11, 10)]);
/// let opts = IGoodlockOptions::default();
/// let (cycles, stats, _) = igoodlock_parallel(&rel, None, &opts, 4);
/// assert_eq!((cycles, stats), igoodlock_filtered(&rel, None, &opts));
/// ```
pub fn igoodlock_parallel(
    relation: &LockDependencyRelation,
    hb: Option<&HbFilter>,
    options: &IGoodlockOptions,
    jobs: usize,
) -> (Vec<Cycle>, IGoodlockStats, ParallelJoinStats) {
    let workers = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    if workers <= 1 || relation.len() < SMALL_RELATION_FAST_PATH {
        let (cycles, stats) = igoodlock_filtered(relation, hb, options);
        return (cycles, stats, ParallelJoinStats::default());
    }
    let deps = relation.deps();
    let mut stats = IGoodlockStats::default();
    let mut pstats = ParallelJoinStats::default();
    let mut cycles: Vec<Cycle> = Vec::new();
    let index = JoinIndex::build(deps);
    let mut reported: HashSet<Vec<u32>> = HashSet::new();

    // D_1 = D.
    let mut current: Vec<IndexedChain> = (0..deps.len())
        .map(|i| IndexedChain::single(i as u32, &index))
        .collect();
    stats.chains_built += current.len() as u64;
    let mut length = 1usize;

    while !current.is_empty() {
        if let Some(max) = options.max_cycle_length {
            if length + 1 > max {
                stats.truncated = true;
                break;
            }
        }
        stats.iterations += 1;
        stats.chains_per_iteration.push(current.len() as u64);
        stats.peak_open_chains = stats.peak_open_chains.max(current.len() as u64);
        let outs = fan_out(&current, &index, workers, &mut pstats);
        // The merge: frontier order, sequential semantics. Candidate
        // counts are reconstructed from bucket positions so a truncation
        // return leaves the counter exactly where the sequential loop's
        // would be — counted through the accepting candidate, the rest
        // of its bucket (and all later chains) never examined.
        let mut next: Vec<IndexedChain> = Vec::new();
        for out in outs {
            let mut examined = 0u64;
            for accept in out.accepts {
                stats.join_candidates_examined += accept.examined_at - examined;
                examined = accept.examined_at;
                stats.chains_built += 1;
                if accept.closes {
                    let ext = accept.ext;
                    let key: Vec<u32> = ext.deps.iter().map(|&i| index.proj[i as usize]).collect();
                    if reported.insert(key) {
                        let cycle = Cycle::new(
                            ext.deps
                                .iter()
                                .map(|&i| CycleComponent::from(&deps[i as usize]))
                                .collect(),
                        );
                        if let Some(hb) = hb {
                            let timings: Option<Vec<_>> = ext
                                .deps
                                .iter()
                                .map(|&i| relation.timing(i as usize))
                                .collect();
                            if let Some(timings) = timings {
                                if !hb.cycle_feasible(&cycle, &timings) {
                                    stats.pruned_by_hb += 1;
                                    continue;
                                }
                            }
                        }
                        cycles.push(cycle);
                        if cycles.len() >= options.max_cycles {
                            stats.truncated = true;
                            return (cycles, stats, pstats);
                        }
                    }
                } else {
                    next.push(accept.ext);
                    if next.len() > options.max_open_chains {
                        stats.truncated = true;
                        return (cycles, stats, pstats);
                    }
                }
            }
            stats.join_candidates_examined += out.bucket_len - examined;
        }
        current = next;
        length += 1;
    }
    (cycles, stats, pstats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::LockDep;
    use df_events::{Label, ObjId, ThreadId};

    fn dep(t: u32, held: &[u32], lock: u32) -> LockDep {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            held.iter().map(|&h| ObjId::new(1000 + h)).collect(),
            ObjId::new(1000 + lock),
            (0..=held.len())
                .map(|i| Label::new(&format!("c:{i}")))
                .collect(),
        )
    }

    /// A ring of `n` philosophers plus enough independent 2-cycle pairs
    /// and open-chain noise to push the frontier past the inline
    /// threshold, so workers actually spawn.
    fn wide_relation(n: u32, pairs: u32, noise: u32) -> LockDependencyRelation {
        let mut deps = Vec::new();
        for i in 0..n {
            deps.push(dep(1 + i, &[i], (i + 1) % n));
        }
        for p in 0..pairs {
            deps.push(dep(1, &[100 + 2 * p], 101 + 2 * p));
            deps.push(dep(2, &[101 + 2 * p], 100 + 2 * p));
        }
        for m in 0..noise {
            deps.push(dep(3 + m % 4, &[500 + m], 501 + m));
        }
        LockDependencyRelation::from_deps(deps)
    }

    fn assert_parallel_matches_sequential(rel: &LockDependencyRelation, opts: &IGoodlockOptions) {
        let (sc, ss) = igoodlock_filtered(rel, None, opts);
        for jobs in [2, 3, 4, 8] {
            let (pc, ps, _) = igoodlock_parallel(rel, None, opts, jobs);
            assert_eq!(
                serde_json::to_string(&pc).unwrap(),
                serde_json::to_string(&sc).unwrap(),
                "jobs={jobs}"
            );
            assert_eq!(ps, ss, "jobs={jobs}");
        }
    }

    #[test]
    fn wide_frontier_is_jobs_invariant() {
        let rel = wide_relation(12, 40, 120);
        assert!(rel.len() >= PARALLEL_FRONTIER_MIN);
        assert_parallel_matches_sequential(&rel, &IGoodlockOptions::default());
        assert_parallel_matches_sequential(&rel, &IGoodlockOptions::length_two_only());
    }

    #[test]
    fn truncation_points_are_jobs_invariant() {
        let rel = wide_relation(12, 40, 120);
        for opts in [
            IGoodlockOptions {
                max_cycles: 7,
                ..IGoodlockOptions::default()
            },
            IGoodlockOptions {
                max_open_chains: 50,
                ..IGoodlockOptions::default()
            },
            IGoodlockOptions {
                max_cycle_length: Some(3),
                ..IGoodlockOptions::default()
            },
        ] {
            assert_parallel_matches_sequential(&rel, &opts);
        }
    }

    #[test]
    fn hb_filter_applies_at_the_merge() {
        // Relations from `from_deps` carry no timings, so the filter
        // keeps everything — what matters is that the filtered parallel
        // run still matches the filtered sequential run exactly.
        let rel = wide_relation(8, 40, 100);
        let hb = HbFilter::from_trace(&df_events::Trace::default());
        let (sc, ss) = igoodlock_filtered(&rel, Some(&hb), &IGoodlockOptions::default());
        let (pc, ps, _) = igoodlock_parallel(&rel, Some(&hb), &IGoodlockOptions::default(), 4);
        assert_eq!(pc, sc);
        assert_eq!(ps, ss);
    }

    #[test]
    fn sequential_and_auto_jobs_delegate() {
        let rel = wide_relation(8, 10, 10);
        let (sc, ss) = igoodlock_filtered(&rel, None, &IGoodlockOptions::default());
        for jobs in [0, 1] {
            let (pc, ps, pj) = igoodlock_parallel(&rel, None, &IGoodlockOptions::default(), jobs);
            assert_eq!(pc, sc, "jobs={jobs}");
            assert_eq!(ps, ss, "jobs={jobs}");
            // jobs=0 resolves to the core count, which may be 1; either
            // way the outputs above already matched. jobs=1 must not
            // have scheduled anything.
            if jobs == 1 {
                assert_eq!(pj, ParallelJoinStats::default());
            }
        }
    }

    #[test]
    fn small_relations_delegate_to_the_fast_path() {
        let rel = wide_relation(2, 1, 1);
        assert!(rel.len() < SMALL_RELATION_FAST_PATH);
        let (pc, ps, pj) = igoodlock_parallel(&rel, None, &IGoodlockOptions::default(), 4);
        let (sc, ss) = igoodlock_filtered(&rel, None, &IGoodlockOptions::default());
        assert_eq!((pc, ps), (sc, ss));
        assert_eq!(pj, ParallelJoinStats::default());
    }

    #[test]
    fn scheduling_stats_count_real_tasks() {
        let rel = wide_relation(12, 40, 120);
        let (_, _, pj) = igoodlock_parallel(&rel, None, &IGoodlockOptions::default(), 4);
        assert!(pj.tasks_executed > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::chains::proptests::{arb_mixed_relation, arb_relation};
    use crate::chains::{igoodlock_indexed_filtered, naive_igoodlock_with_stats};
    use proptest::prelude::*;

    proptest! {
        /// Parallel join ≡ sequential indexed ≡ naive oracle: identical
        /// cycle reports (down to serialized bytes) and identical
        /// `chains_built`, for every jobs value.
        #[test]
        fn parallel_matches_indexed_and_naive(rel in arb_relation(), jobs in 2..5usize) {
            let (pc, ps, _) = igoodlock_parallel(&rel, None, &IGoodlockOptions::default(), jobs);
            let (sc, ss) = igoodlock_filtered(&rel, None, &IGoodlockOptions::default());
            prop_assert_eq!(
                serde_json::to_string(&pc).unwrap(),
                serde_json::to_string(&sc).unwrap()
            );
            prop_assert_eq!(&ps, &ss);
            let (ic, is) = igoodlock_indexed_filtered(&rel, None, &IGoodlockOptions::default());
            let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            prop_assert_eq!(&pc, &ic);
            prop_assert_eq!(pc, nc);
            prop_assert_eq!(is.chains_built, ns.chains_built);
            prop_assert_eq!(ps.chains_built, ns.chains_built);
        }

        /// The same three-way law on mode-mixing relations.
        #[test]
        fn parallel_matches_indexed_and_naive_on_mixed_modes(
            rel in arb_mixed_relation(),
            jobs in 2..5usize,
        ) {
            let (pc, ps, _) = igoodlock_parallel(&rel, None, &IGoodlockOptions::default(), jobs);
            let (sc, ss) = igoodlock_filtered(&rel, None, &IGoodlockOptions::default());
            prop_assert_eq!(&pc, &sc);
            prop_assert_eq!(&ps, &ss);
            let (ic, _) = igoodlock_indexed_filtered(&rel, None, &IGoodlockOptions::default());
            let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            prop_assert_eq!(&pc, &ic);
            prop_assert_eq!(pc, nc);
            prop_assert_eq!(ps.chains_built, ns.chains_built);
        }
    }
}
