//! Algorithm 1: iterative computation of potential deadlock cycles.

use std::collections::HashSet;

use df_events::ObjId;
use serde::{Deserialize, Serialize};

use crate::cycle::{Cycle, CycleComponent};
use crate::relation::{LockDep, LockDependencyRelation};

/// Options bounding the iGoodlock computation.
///
/// The paper notes iGoodlock is iterative — all cycles of length `k` are
/// found before any of length `k + 1` — so with a limited budget it can be
/// stopped after the first iteration (cycles of length 2). All real
/// deadlocks in the paper's benchmarks have length 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IGoodlockOptions {
    /// Maximum cycle length to search for (`None` = unbounded, i.e. run
    /// until no chains remain).
    pub max_cycle_length: Option<usize>,
    /// Stop after reporting this many cycles.
    pub max_cycles: usize,
    /// Abandon the search if an iteration would hold more than this many
    /// open chains (guards against pathological relations).
    pub max_open_chains: usize,
}

impl Default for IGoodlockOptions {
    fn default() -> Self {
        IGoodlockOptions {
            max_cycle_length: None,
            max_cycles: 10_000,
            max_open_chains: 1_000_000,
        }
    }
}

impl IGoodlockOptions {
    /// Convenience: the "limited time budget" configuration of the paper
    /// (one iteration, cycles of length 2 only).
    pub fn length_two_only() -> Self {
        IGoodlockOptions {
            max_cycle_length: Some(2),
            ..IGoodlockOptions::default()
        }
    }
}

/// Statistics of an iGoodlock run (exposed for the bench harness).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IGoodlockStats {
    /// Number of iterations executed (max chain length examined).
    pub iterations: usize,
    /// Total chains ever constructed.
    pub chains_built: u64,
    /// Whether the search was truncated by a limit.
    pub truncated: bool,
    /// Cycles suppressed by the happens-before filter (0 when the filter
    /// is off).
    pub pruned_by_hb: u64,
    /// Open chains alive at the start of each join iteration — the size
    /// of `D_k` as Algorithm 1 iterates, exposed so the observability
    /// layer can report how the join fans out per level.
    pub chains_per_iteration: Vec<u64>,
}

/// An open (not yet cyclic) dependency chain: indices into the relation
/// plus memoized thread/lock sets for O(1)-ish extension checks.
struct Chain {
    deps: Vec<usize>,
    threads: Vec<df_events::ThreadId>,
    locks: Vec<ObjId>,
    /// Union of all component locksets (Definition 2(4)).
    lockset_union: Vec<ObjId>,
}

impl Chain {
    fn single(idx: usize, dep: &LockDep) -> Self {
        Chain {
            deps: vec![idx],
            threads: vec![dep.thread],
            locks: vec![dep.lock],
            lockset_union: dep.lockset.clone(),
        }
    }

    /// Checks Definition 2 for appending `dep`, plus the §2.2.3
    /// duplicate-suppression rule (first thread has minimum id).
    fn can_extend(&self, first: &LockDep, dep: &LockDep) -> bool {
        // §2.2.3: report each cycle once, rooted at its minimum thread id.
        if dep.thread <= first.thread {
            return false;
        }
        // 2(1): threads pairwise distinct.
        if self.threads.contains(&dep.thread) {
            return false;
        }
        // 2(2): acquired locks pairwise distinct.
        if self.locks.contains(&dep.lock) {
            return false;
        }
        // 2(3): the previous lock is held by the new component.
        let last_lock = *self.locks.last().expect("chains are non-empty");
        if !dep.lockset.contains(&last_lock) {
            return false;
        }
        // 2(4): locksets pairwise disjoint.
        if dep.lockset.iter().any(|l| self.lockset_union.contains(l)) {
            return false;
        }
        true
    }

    fn extended(&self, idx: usize, dep: &LockDep) -> Chain {
        let mut threads = self.threads.clone();
        threads.push(dep.thread);
        let mut locks = self.locks.clone();
        locks.push(dep.lock);
        let mut lockset_union = self.lockset_union.clone();
        lockset_union.extend_from_slice(&dep.lockset);
        let mut deps = self.deps.clone();
        deps.push(idx);
        Chain {
            deps,
            threads,
            locks,
            lockset_union,
        }
    }

    /// Definition 3: the chain is a potential deadlock cycle if the last
    /// acquired lock is held by the first component.
    fn closes(&self, relation: &[LockDep]) -> bool {
        let first = &relation[self.deps[0]];
        let last_lock = *self.locks.last().expect("non-empty");
        first.lockset.contains(&last_lock)
    }
}

/// Runs Algorithm 1 on `relation` and returns the potential deadlock
/// cycles, each reported exactly once (§2.2.3), shortest first.
///
/// # Example
///
/// ```
/// use df_igoodlock::{igoodlock, IGoodlockOptions, LockDep, LockDependencyRelation};
/// use df_events::{Label, ObjId, ThreadId};
///
/// let dep = |t: u32, held: u32, lock: u32| LockDep {
///     thread: ThreadId::new(t),
///     thread_obj: ObjId::new(t),
///     lockset: vec![ObjId::new(held)],
///     lock: ObjId::new(lock),
///     contexts: vec![Label::new("a:1"), Label::new("a:2")],
/// };
/// let rel = LockDependencyRelation::from_deps(vec![dep(1, 10, 11), dep(2, 11, 10)]);
/// let cycles = igoodlock(&rel, &IGoodlockOptions::default());
/// assert_eq!(cycles.len(), 1);
/// assert_eq!(cycles[0].len(), 2);
/// ```
pub fn igoodlock(relation: &LockDependencyRelation, options: &IGoodlockOptions) -> Vec<Cycle> {
    igoodlock_with_stats(relation, options).0
}

/// Like [`igoodlock`] but also returns run statistics.
pub fn igoodlock_with_stats(
    relation: &LockDependencyRelation,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    igoodlock_filtered(relation, None, options)
}

/// [`igoodlock`] with an optional happens-before filter: cycles whose
/// hold windows are ordered by fork/join happens-before (and therefore
/// can never overlap in any execution) are suppressed and counted in
/// [`IGoodlockStats::pruned_by_hb`]. Tuples without timing information
/// (relations built with
/// [`LockDependencyRelation::from_deps`]) are conservatively kept.
///
/// # Example
///
/// ```
/// use df_igoodlock::{igoodlock_filtered, HbFilter, IGoodlockOptions, LockDependencyRelation};
/// use df_events::Trace;
///
/// let trace = Trace::default();
/// let relation = LockDependencyRelation::from_trace(&trace);
/// let hb = HbFilter::from_trace(&trace);
/// let (cycles, stats) =
///     igoodlock_filtered(&relation, Some(&hb), &IGoodlockOptions::default());
/// assert!(cycles.is_empty());
/// assert_eq!(stats.pruned_by_hb, 0);
/// ```
pub fn igoodlock_filtered(
    relation: &LockDependencyRelation,
    hb: Option<&crate::hb::HbFilter>,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    let deps = relation.deps();
    let mut stats = IGoodlockStats::default();
    let mut cycles: Vec<Cycle> = Vec::new();
    // Dedup key: the (thread, lock, context) projection of the chain.
    // Distinct chains can differ only in their locksets; their projections
    // — all that the report and Phase II consume — are then identical, so
    // reporting both would only duplicate work downstream.
    type CycleKey = Vec<(df_events::ThreadId, ObjId, Vec<df_events::Label>)>;
    let mut reported: HashSet<CycleKey> = HashSet::new();

    // D_1 = D.
    let mut current: Vec<Chain> = deps
        .iter()
        .enumerate()
        .map(|(i, d)| Chain::single(i, d))
        .collect();
    stats.chains_built += current.len() as u64;
    let mut length = 1usize;

    while !current.is_empty() {
        if let Some(max) = options.max_cycle_length {
            if length + 1 > max {
                stats.truncated = true;
                break;
            }
        }
        stats.iterations += 1;
        stats.chains_per_iteration.push(current.len() as u64);
        let mut next: Vec<Chain> = Vec::new();
        for chain in &current {
            let first = &deps[chain.deps[0]];
            for (idx, dep) in deps.iter().enumerate() {
                if !chain.can_extend(first, dep) {
                    continue;
                }
                let ext = chain.extended(idx, dep);
                stats.chains_built += 1;
                if ext.closes(deps) {
                    let key: CycleKey = ext
                        .deps
                        .iter()
                        .map(|&i| (deps[i].thread, deps[i].lock, deps[i].contexts.clone()))
                        .collect();
                    if reported.insert(key) {
                        let cycle = Cycle::new(
                            ext.deps
                                .iter()
                                .map(|&i| CycleComponent::from(&deps[i]))
                                .collect(),
                        );
                        if let Some(hb) = hb {
                            let timings: Option<Vec<_>> =
                                ext.deps.iter().map(|&i| relation.timing(i)).collect();
                            if let Some(timings) = timings {
                                if !hb.cycle_feasible(&cycle, &timings) {
                                    stats.pruned_by_hb += 1;
                                    continue;
                                }
                            }
                        }
                        cycles.push(cycle);
                        if cycles.len() >= options.max_cycles {
                            stats.truncated = true;
                            return (cycles, stats);
                        }
                    }
                } else {
                    next.push(ext);
                    if next.len() > options.max_open_chains {
                        stats.truncated = true;
                        return (cycles, stats);
                    }
                }
            }
        }
        current = next;
        length += 1;
    }
    (cycles, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::{Label, ThreadId};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// `(t, L, l)` with canned contexts; lock ids are offset by 100 to
    /// keep them distinct from thread ids.
    fn dep(t: u32, held: &[u32], lock: u32) -> LockDep {
        LockDep {
            thread: ThreadId::new(t),
            thread_obj: ObjId::new(t),
            lockset: held.iter().map(|&h| ObjId::new(100 + h)).collect(),
            lock: ObjId::new(100 + lock),
            contexts: (0..=held.len()).map(|i| l(&format!("c:{i}"))).collect(),
        }
    }

    #[test]
    fn simple_two_cycle() {
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        assert_eq!(
            cycles[0].threads(),
            vec![ThreadId::new(1), ThreadId::new(2)]
        );
    }

    #[test]
    fn cycle_reported_once_not_k_times() {
        // Without §2.2.3 this 3-cycle would be reported 3 times (one per
        // rotation).
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
        // Rooted at the minimum thread id.
        assert_eq!(cycles[0].threads()[0], ThreadId::new(1));
    }

    #[test]
    fn no_cycle_same_order() {
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[1], 2)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn gate_lock_prevents_cycle() {
        // Both threads hold a common gate lock G(=9) while acquiring:
        // Definition 2(4) (disjoint locksets) rules the cycle out — this is
        // exactly why Goodlock-style analyses do not flag gate-protected
        // nesting.
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[9, 1], 2), dep(2, &[9, 2], 1)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn distinct_threads_required() {
        // One thread acquiring in both orders cannot deadlock with itself.
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(1, &[2], 1)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn complex_cycles_not_reported() {
        // Two independent 2-cycles exist between (t1,t2) via locks 1,2 and
        // (t1,t2) via locks 3,4. The "complex" 4-component combination
        // must not be reported because cycles are not extended
        // (Algorithm 1 line 9) and threads must be distinct.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 1),
            dep(1, &[3], 4),
            dep(2, &[4], 3),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn three_cycle_with_two_cycle_subsumed_separately() {
        // A 2-cycle and a 3-cycle share a dependency; both are reported.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 1),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        let lengths: Vec<usize> = cycles.iter().map(|c| c.len()).collect();
        assert!(lengths.contains(&2));
        assert!(lengths.contains(&3));
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn max_cycle_length_limits_iterations() {
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::length_two_only());
        assert!(cycles.is_empty());
        assert!(stats.truncated);
        let (cycles, stats) = igoodlock_with_stats(
            &rel,
            &IGoodlockOptions {
                max_cycle_length: Some(3),
                ..IGoodlockOptions::default()
            },
        );
        assert_eq!(cycles.len(), 1);
        assert!(!stats.truncated || stats.iterations >= 2);
    }

    #[test]
    fn max_cycles_cap_respected() {
        // 9 combinations à la Collections: 3 methods × 3 methods.
        let mut deps = Vec::new();
        for m in 0..3u32 {
            deps.push(dep_ctx(1, 1, 2, m));
            deps.push(dep_ctx(2, 2, 1, m));
        }
        let rel = LockDependencyRelation::from_deps(deps);
        let all = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(all.len(), 9);
        let capped = igoodlock(
            &rel,
            &IGoodlockOptions {
                max_cycles: 4,
                ..IGoodlockOptions::default()
            },
        );
        assert_eq!(capped.len(), 4);
    }

    /// Like `dep` but with a context distinguished by `m` (different call
    /// sites for the same lock pair → distinct relation tuples).
    fn dep_ctx(t: u32, held: u32, lock: u32, m: u32) -> LockDep {
        LockDep {
            thread: ThreadId::new(t),
            thread_obj: ObjId::new(t),
            lockset: vec![ObjId::new(100 + held)],
            lock: ObjId::new(100 + lock),
            contexts: vec![l(&format!("m{m}:outer")), l(&format!("m{m}:inner"))],
        }
    }

    #[test]
    fn contexts_distinguish_cycles() {
        // Same lock pair, two different program contexts → two distinct
        // potential deadlock reports (the paper's Jigsaw example: "same
        // locks, acquired at different program locations").
        let rel = LockDependencyRelation::from_deps(vec![
            dep_ctx(1, 1, 2, 0),
            dep_ctx(1, 1, 2, 1),
            dep_ctx(2, 2, 1, 0),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn empty_relation_no_cycles() {
        let rel = LockDependencyRelation::default();
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert!(cycles.is_empty());
        assert_eq!(stats.iterations, 0);
        assert!(stats.chains_per_iteration.is_empty());
    }

    #[test]
    fn chain_sizes_recorded_per_join_iteration() {
        // A 3-cycle: the join runs for two levels, starting from the three
        // length-1 chains of the relation.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(stats.chains_per_iteration.len(), stats.iterations);
        assert_eq!(stats.chains_per_iteration[0], rel.len() as u64);
        assert!(
            stats.chains_per_iteration.iter().sum::<u64>() <= stats.chains_built,
            "open chains per level never exceed the chains ever built"
        );
    }

    #[test]
    fn figure1_example_produces_expected_cycle() {
        // Figure 1 of the paper: t1 acquires o1 then o2 at sites 15/16;
        // t2 acquires o2 then o1 at the same sites.
        let rel = LockDependencyRelation::from_deps(vec![
            LockDep {
                thread: ThreadId::new(1),
                thread_obj: ObjId::new(25),
                lockset: vec![ObjId::new(122)],
                lock: ObjId::new(123),
                contexts: vec![l("run:15"), l("run:16")],
            },
            LockDep {
                thread: ThreadId::new(2),
                thread_obj: ObjId::new(26),
                lockset: vec![ObjId::new(123)],
                lock: ObjId::new(122),
                contexts: vec![l("run:15"), l("run:16")],
            },
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.components()[0].contexts, vec![l("run:15"), l("run:16")]);
        assert_eq!(c.locks(), vec![ObjId::new(123), ObjId::new(122)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use df_events::{Label, ThreadId};
    use proptest::prelude::*;

    fn arb_relation() -> impl Strategy<Value = LockDependencyRelation> {
        prop::collection::vec(
            (
                1..5u32,                              // thread
                prop::collection::vec(0..6u32, 1..3), // held
                0..6u32,                              // lock
            ),
            0..14,
        )
        .prop_map(|tuples| {
            let deps = tuples
                .into_iter()
                .filter(|(_, held, lock)| !held.contains(lock))
                .map(|(t, held, lock)| {
                    let mut held: Vec<_> = held;
                    held.sort();
                    held.dedup();
                    LockDep {
                        thread: ThreadId::new(t),
                        thread_obj: df_events::ObjId::new(t),
                        lockset: held
                            .iter()
                            .map(|&h| df_events::ObjId::new(100 + h))
                            .collect(),
                        lock: df_events::ObjId::new(100 + lock),
                        contexts: (0..=held.len())
                            .map(|i| Label::new(&format!("p:{i}")))
                            .collect(),
                    }
                })
                .collect();
            LockDependencyRelation::from_deps(deps)
        })
    }

    proptest! {
        /// Every reported cycle satisfies Definitions 2 and 3.
        #[test]
        fn cycles_satisfy_definitions(rel in arb_relation()) {
            let cycles = igoodlock(&rel, &IGoodlockOptions::default());
            for cycle in &cycles {
                let comps = cycle.components();
                let n = comps.len();
                prop_assert!(n >= 2);
                // distinct threads and locks
                let mut ts: Vec<_> = comps.iter().map(|c| c.thread).collect();
                ts.sort(); ts.dedup();
                prop_assert_eq!(ts.len(), n);
                let mut ls: Vec<_> = comps.iter().map(|c| c.lock).collect();
                ls.sort(); ls.dedup();
                prop_assert_eq!(ls.len(), n);
                // chain + closing conditions
                for i in 0..n {
                    let next = &comps[(i + 1) % n];
                    prop_assert!(next.lockset.contains(&comps[i].lock));
                }
                // pairwise disjoint locksets
                for i in 0..n {
                    for j in (i + 1)..n {
                        prop_assert!(comps[i]
                            .lockset
                            .iter()
                            .all(|l| !comps[j].lockset.contains(l)));
                    }
                }
                // duplicate suppression: rooted at minimal thread
                prop_assert!(comps.iter().all(|c| c.thread >= comps[0].thread));
            }
        }

        /// No cycle is reported twice (up to rotation).
        #[test]
        fn no_duplicate_cycles(rel in arb_relation()) {
            let cycles = igoodlock(&rel, &IGoodlockOptions::default());
            for i in 0..cycles.len() {
                for j in (i + 1)..cycles.len() {
                    let a: std::collections::BTreeSet<_> = cycles[i]
                        .components()
                        .iter()
                        .map(|c| (c.thread, c.lock, c.contexts.clone()))
                        .collect();
                    let b: std::collections::BTreeSet<_> = cycles[j]
                        .components()
                        .iter()
                        .map(|c| (c.thread, c.lock, c.contexts.clone()))
                        .collect();
                    prop_assert_ne!(a, b);
                }
            }
        }

        /// Length-2 truncation reports exactly the length-2 subset.
        #[test]
        fn truncation_is_a_prefix(rel in arb_relation()) {
            let all = igoodlock(&rel, &IGoodlockOptions::default());
            let short = igoodlock(&rel, &IGoodlockOptions::length_two_only());
            let all2 = all.iter().filter(|c| c.len() == 2).count();
            prop_assert_eq!(short.len(), all2);
            prop_assert!(short.iter().all(|c| c.len() == 2));
        }
    }
}
