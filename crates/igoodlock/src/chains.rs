//! Algorithm 1: iterative computation of potential deadlock cycles.
//!
//! Two implementations of the same join live here:
//!
//! * [`igoodlock`] / [`igoodlock_filtered`] — the **indexed** join. Locks
//!   and threads are interned to dense per-run ids, locksets become
//!   bitsets, and candidates for extending a chain come from a per-lock
//!   bucket (see [`crate::index`]) instead of a scan of the whole
//!   relation. Chains carry dep indices and bitsets only; threads, locks
//!   and contexts are materialized from the relation when a cycle is
//!   actually reported.
//! * [`naive_igoodlock`] / [`naive_igoodlock_filtered`] — the original
//!   brute-force join, kept verbatim as a test oracle. Every property
//!   test and the equivalence suite assert the two produce byte-identical
//!   cycle reports and identical [`IGoodlockStats::chains_built`].
//!
//! Both walk candidate extensions in relation order and accept exactly
//! the tuples that pass Definition 2 plus the §2.2.3 dedup rule, so the
//! indexed join is a pure strength reduction: same cycles, same order,
//! same truncation points, fewer tuples touched.

use std::collections::HashSet;

use df_events::{AcquireMode, ObjId};
use serde::{Deserialize, Serialize};

use crate::cycle::{Cycle, CycleComponent};
use crate::index::{BitSet, JoinIndex};
use crate::relation::{LockDep, LockDependencyRelation};

/// Options bounding the iGoodlock computation.
///
/// The paper notes iGoodlock is iterative — all cycles of length `k` are
/// found before any of length `k + 1` — so with a limited budget it can be
/// stopped after the first iteration (cycles of length 2). All real
/// deadlocks in the paper's benchmarks have length 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IGoodlockOptions {
    /// Maximum cycle length to search for (`None` = unbounded, i.e. run
    /// until no chains remain).
    pub max_cycle_length: Option<usize>,
    /// Stop after reporting this many cycles.
    pub max_cycles: usize,
    /// Abandon the search if an iteration would hold more than this many
    /// open chains (guards against pathological relations).
    pub max_open_chains: usize,
}

impl Default for IGoodlockOptions {
    fn default() -> Self {
        IGoodlockOptions {
            max_cycle_length: None,
            max_cycles: 10_000,
            max_open_chains: 1_000_000,
        }
    }
}

impl IGoodlockOptions {
    /// Convenience: the "limited time budget" configuration of the paper
    /// (one iteration, cycles of length 2 only).
    pub fn length_two_only() -> Self {
        IGoodlockOptions {
            max_cycle_length: Some(2),
            ..IGoodlockOptions::default()
        }
    }
}

/// Statistics of an iGoodlock run (exposed for the bench harness).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IGoodlockStats {
    /// Number of iterations executed (max chain length examined).
    pub iterations: usize,
    /// Total chains ever constructed.
    pub chains_built: u64,
    /// Whether the search was truncated by a limit.
    pub truncated: bool,
    /// Cycles suppressed by the happens-before filter (0 when the filter
    /// is off).
    pub pruned_by_hb: u64,
    /// Open chains alive at the start of each join iteration — the size
    /// of `D_k` as Algorithm 1 iterates, exposed so the observability
    /// layer can report how the join fans out per level.
    pub chains_per_iteration: Vec<u64>,
    /// Largest number of open chains alive at the start of any join
    /// iteration (the peak of `chains_per_iteration`) — how wide the
    /// join got before it drained.
    pub peak_open_chains: u64,
    /// Relation tuples examined as extension candidates, summed over
    /// every (chain, candidate) pair of every iteration. The naive join
    /// examines `|D|` tuples per open chain; the indexed join examines
    /// only the bucket of the chain's last lock, so the ratio between
    /// the two is the join index's hit rate.
    pub join_candidates_examined: u64,
}

/// An open chain in the indexed join: dep indices plus fixed-width
/// bitsets over the per-run interned ids. Nothing here borrows the
/// relation, and extension clones only word-blocks — never thread, lock
/// or context vectors. Crate-visible so [`crate::parallel`] workers
/// extend exactly the same chains the sequential loop does.
pub(crate) struct IndexedChain {
    pub(crate) deps: Vec<u32>,
    /// Interned threads present (Definition 2(1)).
    thread_bits: BitSet,
    /// Interned acquired locks present (Definition 2(2)).
    lock_bits: BitSet,
    /// Union of component locksets, any hold mode (mode-aware
    /// Definition 2(4), one side of the conflict check).
    lockset_union: BitSet,
    /// Union of the components' *exclusively held* locksets (the other
    /// side: a candidate's hold only conflicts with these, unless the
    /// candidate itself holds exclusively).
    lockset_excl_union: BitSet,
    /// Interned lock acquired by the last component (Definition 2(3):
    /// the next component must hold it — i.e. come from its bucket).
    pub(crate) last_lock: u32,
    /// Mode of that acquisition: selects which bucket (shared
    /// acquisitions only conflict with exclusive holders).
    pub(crate) last_mode: AcquireMode,
}

impl IndexedChain {
    pub(crate) fn single(idx: u32, index: &JoinIndex) -> Self {
        let i = idx as usize;
        let mut thread_bits = BitSet::zeroed(index.thread_bits());
        thread_bits.insert(index.thread_bit[i]);
        let mut lock_bits = BitSet::zeroed(index.lock_bits());
        lock_bits.insert(index.lock[i]);
        IndexedChain {
            deps: vec![idx],
            thread_bits,
            lock_bits,
            lockset_union: index.lockset[i].clone(),
            lockset_excl_union: index.lockset_excl[i].clone(),
            last_lock: index.lock[i],
            last_mode: index.mode[i],
        }
    }

    /// The Definition 2 + §2.2.3 filter for appending candidate `c`:
    /// dedup root is the minimum thread id, threads and acquired locks
    /// pairwise distinct, and the mode-aware disjoint-locksets check.
    /// Shared between the sequential loop and the parallel workers so
    /// the two joins cannot drift apart.
    pub(crate) fn admits(&self, c: usize, index: &JoinIndex) -> bool {
        let root = index.thread[self.deps[0] as usize];
        !(index.thread[c] <= root
            || self.thread_bits.contains(index.thread_bit[c])
            || self.lock_bits.contains(index.lock[c])
            || index.lockset[c].intersects(&self.lockset_excl_union)
            || index.lockset_excl[c].intersects(&self.lockset_union))
    }

    pub(crate) fn extended(&self, idx: u32, index: &JoinIndex) -> IndexedChain {
        let i = idx as usize;
        let mut deps = self.deps.clone();
        deps.push(idx);
        let mut thread_bits = self.thread_bits.clone();
        thread_bits.insert(index.thread_bit[i]);
        let mut lock_bits = self.lock_bits.clone();
        lock_bits.insert(index.lock[i]);
        let mut lockset_union = self.lockset_union.clone();
        lockset_union.union_with(&index.lockset[i]);
        let mut lockset_excl_union = self.lockset_excl_union.clone();
        lockset_excl_union.union_with(&index.lockset_excl[i]);
        IndexedChain {
            deps,
            thread_bits,
            lock_bits,
            lockset_union,
            lockset_excl_union,
            last_lock: index.lock[i],
            last_mode: index.mode[i],
        }
    }
}

/// Runs Algorithm 1 on `relation` and returns the potential deadlock
/// cycles, each reported exactly once (§2.2.3), shortest first.
///
/// This is the indexed implementation; [`naive_igoodlock`] is the
/// brute-force oracle with identical output.
///
/// # Example
///
/// ```
/// use df_igoodlock::{igoodlock, IGoodlockOptions, LockDep, LockDependencyRelation};
/// use df_events::{Label, ObjId, ThreadId};
///
/// let dep = |t: u32, held: u32, lock: u32| {
///     LockDep::exclusive(
///         ThreadId::new(t),
///         ObjId::new(t),
///         vec![ObjId::new(held)],
///         ObjId::new(lock),
///         vec![Label::new("a:1"), Label::new("a:2")],
///     )
/// };
/// let rel = LockDependencyRelation::from_deps(vec![dep(1, 10, 11), dep(2, 11, 10)]);
/// let cycles = igoodlock(&rel, &IGoodlockOptions::default());
/// assert_eq!(cycles.len(), 1);
/// assert_eq!(cycles[0].len(), 2);
/// ```
pub fn igoodlock(relation: &LockDependencyRelation, options: &IGoodlockOptions) -> Vec<Cycle> {
    igoodlock_with_stats(relation, options).0
}

/// Like [`igoodlock`] but also returns run statistics.
pub fn igoodlock_with_stats(
    relation: &LockDependencyRelation,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    igoodlock_filtered(relation, None, options)
}

/// [`igoodlock`] with an optional happens-before filter: cycles whose
/// hold windows are ordered by fork/join happens-before (and therefore
/// can never overlap in any execution) are suppressed and counted in
/// [`IGoodlockStats::pruned_by_hb`]. Tuples without timing information
/// (relations built with
/// [`LockDependencyRelation::from_deps`]) are conservatively kept.
///
/// # Example
///
/// ```
/// use df_igoodlock::{igoodlock_filtered, HbFilter, IGoodlockOptions, LockDependencyRelation};
/// use df_events::Trace;
///
/// let trace = Trace::default();
/// let relation = LockDependencyRelation::from_trace(&trace);
/// let hb = HbFilter::from_trace(&trace);
/// let (cycles, stats) =
///     igoodlock_filtered(&relation, Some(&hb), &IGoodlockOptions::default());
/// assert!(cycles.is_empty());
/// assert_eq!(stats.pruned_by_hb, 0);
/// ```
pub fn igoodlock_filtered(
    relation: &LockDependencyRelation,
    hb: Option<&crate::hb::HbFilter>,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    // Building a JoinIndex (interners, bitsets, buckets) costs more than
    // the brute-force join saves on tiny relations — the ring-4 bench row
    // ran at 0.64x naive before this dispatch. Below the threshold the
    // oracle *is* the implementation.
    if relation.len() < SMALL_RELATION_FAST_PATH {
        return naive_igoodlock_filtered(relation, hb, options);
    }
    igoodlock_indexed_filtered(relation, hb, options)
}

/// Relations smaller than this skip [`JoinIndex`] construction and run
/// the brute-force join directly: with fewer than this many tuples the
/// index costs more to build than the scan it avoids.
pub(crate) const SMALL_RELATION_FAST_PATH: usize = 8;

/// The indexed join proper, with no size dispatch — what
/// [`igoodlock_filtered`] runs above [`SMALL_RELATION_FAST_PATH`], kept
/// directly callable so equivalence tests exercise the index even on
/// tiny fixtures.
pub(crate) fn igoodlock_indexed_filtered(
    relation: &LockDependencyRelation,
    hb: Option<&crate::hb::HbFilter>,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    let deps = relation.deps();
    let mut stats = IGoodlockStats::default();
    let mut cycles: Vec<Cycle> = Vec::new();
    // All interners live inside this per-call index: a second run — or a
    // parallel campaign worker — rebuilds them from scratch, so dense ids
    // depend only on this relation's tuple order.
    let index = JoinIndex::build(deps);
    // Dedup key: the per-run projection id of each component — the dense
    // id of its (thread, lock, contexts) view. Distinct chains can differ
    // only in their locksets; their projections — all that the report and
    // Phase II consume — are then identical, so reporting both would only
    // duplicate work downstream.
    let mut reported: HashSet<Vec<u32>> = HashSet::new();

    // D_1 = D.
    let mut current: Vec<IndexedChain> = (0..deps.len())
        .map(|i| IndexedChain::single(i as u32, &index))
        .collect();
    stats.chains_built += current.len() as u64;
    let mut length = 1usize;

    while !current.is_empty() {
        if let Some(max) = options.max_cycle_length {
            if length + 1 > max {
                stats.truncated = true;
                break;
            }
        }
        stats.iterations += 1;
        stats.chains_per_iteration.push(current.len() as u64);
        stats.peak_open_chains = stats.peak_open_chains.max(current.len() as u64);
        let mut next: Vec<IndexedChain> = Vec::new();
        for chain in &current {
            // Definition 2(3) plus the mode edge rule is the bucket
            // membership (a shared last acquisition draws only from the
            // exclusive-holders bucket); `admits` is §2.2.3 plus 2(1),
            // 2(2) and the mode-aware 2(4). Buckets list tuples in
            // relation order, so accepted extensions appear in exactly
            // the order the naive scan would produce them.
            for &cand in index.candidates(chain.last_lock, chain.last_mode) {
                stats.join_candidates_examined += 1;
                if !chain.admits(cand as usize, &index) {
                    continue;
                }
                let ext = chain.extended(cand, &index);
                stats.chains_built += 1;
                // Definition 3: the first component holds the last
                // acquired lock in a conflicting mode.
                if index.closes_against(ext.deps[0] as usize, ext.last_lock, ext.last_mode) {
                    let key: Vec<u32> = ext.deps.iter().map(|&i| index.proj[i as usize]).collect();
                    if reported.insert(key) {
                        let cycle = Cycle::new(
                            ext.deps
                                .iter()
                                .map(|&i| CycleComponent::from(&deps[i as usize]))
                                .collect(),
                        );
                        if let Some(hb) = hb {
                            let timings: Option<Vec<_>> = ext
                                .deps
                                .iter()
                                .map(|&i| relation.timing(i as usize))
                                .collect();
                            if let Some(timings) = timings {
                                if !hb.cycle_feasible(&cycle, &timings) {
                                    stats.pruned_by_hb += 1;
                                    continue;
                                }
                            }
                        }
                        cycles.push(cycle);
                        if cycles.len() >= options.max_cycles {
                            stats.truncated = true;
                            return (cycles, stats);
                        }
                    }
                } else {
                    next.push(ext);
                    if next.len() > options.max_open_chains {
                        stats.truncated = true;
                        return (cycles, stats);
                    }
                }
            }
        }
        current = next;
        length += 1;
    }
    (cycles, stats)
}

/// An open (not yet cyclic) dependency chain of the naive join: indices
/// into the relation plus memoized thread/lock vectors, compared by
/// linear scans.
struct NaiveChain {
    deps: Vec<usize>,
    threads: Vec<df_events::ThreadId>,
    locks: Vec<ObjId>,
    /// Union of all component locksets, any hold mode.
    lockset_union: Vec<ObjId>,
    /// Union of the components' exclusively held locks (the mode-aware
    /// Definition 2(4) compares against this on one side).
    lockset_excl_union: Vec<ObjId>,
    /// Mode of the last component's acquisition (selects which holds of
    /// that lock conflict).
    last_mode: AcquireMode,
}

impl NaiveChain {
    fn single(idx: usize, dep: &LockDep) -> Self {
        NaiveChain {
            deps: vec![idx],
            threads: vec![dep.thread],
            locks: vec![dep.lock],
            lockset_union: dep.lockset.clone(),
            lockset_excl_union: excl_holds(dep),
            last_mode: dep.mode,
        }
    }

    /// Checks Definition 2 for appending `dep`, plus the §2.2.3
    /// duplicate-suppression rule (first thread has minimum id).
    fn can_extend(&self, first: &LockDep, dep: &LockDep) -> bool {
        // §2.2.3: report each cycle once, rooted at its minimum thread id.
        if dep.thread <= first.thread {
            return false;
        }
        // 2(1): threads pairwise distinct.
        if self.threads.contains(&dep.thread) {
            return false;
        }
        // 2(2): acquired locks pairwise distinct.
        if self.locks.contains(&dep.lock) {
            return false;
        }
        // 2(3) + mode edge rule: the previous lock is held by the new
        // component in a mode its acquisition conflicts with (read-read
        // never blocks).
        let last_lock = *self.locks.last().expect("chains are non-empty");
        if !dep.hold_blocks(last_lock, self.last_mode) {
            return false;
        }
        // Mode-aware 2(4): locksets may overlap only in read-read holds —
        // a common lock disqualifies iff held exclusively on either side.
        if dep.lockset.iter().enumerate().any(|(i, l)| {
            self.lockset_excl_union.contains(l)
                || (dep
                    .hold_modes
                    .get(i)
                    .copied()
                    .unwrap_or(AcquireMode::Exclusive)
                    .is_exclusive()
                    && self.lockset_union.contains(l))
        }) {
            return false;
        }
        true
    }

    fn extended(&self, idx: usize, dep: &LockDep) -> NaiveChain {
        let mut threads = self.threads.clone();
        threads.push(dep.thread);
        let mut locks = self.locks.clone();
        locks.push(dep.lock);
        let mut lockset_union = self.lockset_union.clone();
        lockset_union.extend_from_slice(&dep.lockset);
        let mut lockset_excl_union = self.lockset_excl_union.clone();
        lockset_excl_union.extend_from_slice(&excl_holds(dep));
        let mut deps = self.deps.clone();
        deps.push(idx);
        NaiveChain {
            deps,
            threads,
            locks,
            lockset_union,
            lockset_excl_union,
            last_mode: dep.mode,
        }
    }

    /// Definition 3: the chain is a potential deadlock cycle if the last
    /// acquired lock is held by the first component in a conflicting
    /// mode.
    fn closes(&self, relation: &[LockDep]) -> bool {
        let first = &relation[self.deps[0]];
        let last_lock = *self.locks.last().expect("non-empty");
        first.hold_blocks(last_lock, self.last_mode)
    }
}

/// The exclusively held subset of a tuple's lockset (holds past a
/// truncated `hold_modes` default to exclusive, matching the serde
/// default).
fn excl_holds(dep: &LockDep) -> Vec<ObjId> {
    dep.lockset
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            dep.hold_modes
                .get(i)
                .copied()
                .unwrap_or(AcquireMode::Exclusive)
                .is_exclusive()
        })
        .map(|(_, &l)| l)
        .collect()
}

/// The original brute-force Algorithm 1: scans the whole relation per
/// open chain with linear lockset checks. Kept as the oracle the indexed
/// implementation is tested against; produces byte-identical cycles and
/// identical `chains_built` / `chains_per_iteration` / `truncated`.
pub fn naive_igoodlock(
    relation: &LockDependencyRelation,
    options: &IGoodlockOptions,
) -> Vec<Cycle> {
    naive_igoodlock_with_stats(relation, options).0
}

/// Like [`naive_igoodlock`] but also returns run statistics.
pub fn naive_igoodlock_with_stats(
    relation: &LockDependencyRelation,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    naive_igoodlock_filtered(relation, None, options)
}

/// [`naive_igoodlock`] with the optional happens-before filter — the
/// brute-force counterpart of [`igoodlock_filtered`].
pub fn naive_igoodlock_filtered(
    relation: &LockDependencyRelation,
    hb: Option<&crate::hb::HbFilter>,
    options: &IGoodlockOptions,
) -> (Vec<Cycle>, IGoodlockStats) {
    let deps = relation.deps();
    let mut stats = IGoodlockStats::default();
    let mut cycles: Vec<Cycle> = Vec::new();
    // Dedup key: the (thread, lock, mode, context) projection of the
    // chain — the same view the indexed join's projection ids intern.
    type CycleKey = Vec<(
        df_events::ThreadId,
        ObjId,
        AcquireMode,
        Vec<df_events::Label>,
    )>;
    let mut reported: HashSet<CycleKey> = HashSet::new();

    // D_1 = D.
    let mut current: Vec<NaiveChain> = deps
        .iter()
        .enumerate()
        .map(|(i, d)| NaiveChain::single(i, d))
        .collect();
    stats.chains_built += current.len() as u64;
    let mut length = 1usize;

    while !current.is_empty() {
        if let Some(max) = options.max_cycle_length {
            if length + 1 > max {
                stats.truncated = true;
                break;
            }
        }
        stats.iterations += 1;
        stats.chains_per_iteration.push(current.len() as u64);
        stats.peak_open_chains = stats.peak_open_chains.max(current.len() as u64);
        let mut next: Vec<NaiveChain> = Vec::new();
        for chain in &current {
            let first = &deps[chain.deps[0]];
            stats.join_candidates_examined += deps.len() as u64;
            for (idx, dep) in deps.iter().enumerate() {
                if !chain.can_extend(first, dep) {
                    continue;
                }
                let ext = chain.extended(idx, dep);
                stats.chains_built += 1;
                if ext.closes(deps) {
                    let key: CycleKey = ext
                        .deps
                        .iter()
                        .map(|&i| {
                            (
                                deps[i].thread,
                                deps[i].lock,
                                deps[i].mode,
                                deps[i].contexts.clone(),
                            )
                        })
                        .collect();
                    if reported.insert(key) {
                        let cycle = Cycle::new(
                            ext.deps
                                .iter()
                                .map(|&i| CycleComponent::from(&deps[i]))
                                .collect(),
                        );
                        if let Some(hb) = hb {
                            let timings: Option<Vec<_>> =
                                ext.deps.iter().map(|&i| relation.timing(i)).collect();
                            if let Some(timings) = timings {
                                if !hb.cycle_feasible(&cycle, &timings) {
                                    stats.pruned_by_hb += 1;
                                    continue;
                                }
                            }
                        }
                        cycles.push(cycle);
                        if cycles.len() >= options.max_cycles {
                            stats.truncated = true;
                            return (cycles, stats);
                        }
                    }
                } else {
                    next.push(ext);
                    if next.len() > options.max_open_chains {
                        stats.truncated = true;
                        return (cycles, stats);
                    }
                }
            }
        }
        current = next;
        length += 1;
    }
    (cycles, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::{Label, ThreadId};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// `(t, L, l)` with canned contexts; lock ids are offset by 100 to
    /// keep them distinct from thread ids.
    fn dep(t: u32, held: &[u32], lock: u32) -> LockDep {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            held.iter().map(|&h| ObjId::new(100 + h)).collect(),
            ObjId::new(100 + lock),
            (0..=held.len()).map(|i| l(&format!("c:{i}"))).collect(),
        )
    }

    /// Like `dep` but with explicit hold modes and acquire mode.
    fn dep_m(t: u32, held: &[(u32, AcquireMode)], lock: u32, mode: AcquireMode) -> LockDep {
        let mut d = dep(t, &held.iter().map(|&(h, _)| h).collect::<Vec<_>>(), lock);
        d.mode = mode;
        d.hold_modes = held.iter().map(|&(_, m)| m).collect();
        d
    }

    #[test]
    fn simple_two_cycle() {
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        assert_eq!(
            cycles[0].threads(),
            vec![ThreadId::new(1), ThreadId::new(2)]
        );
    }

    #[test]
    fn cycle_reported_once_not_k_times() {
        // Without §2.2.3 this 3-cycle would be reported 3 times (one per
        // rotation).
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
        // Rooted at the minimum thread id.
        assert_eq!(cycles[0].threads()[0], ThreadId::new(1));
    }

    #[test]
    fn no_cycle_same_order() {
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[1], 2)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn gate_lock_prevents_cycle() {
        // Both threads hold a common gate lock G(=9) while acquiring:
        // Definition 2(4) (disjoint locksets) rules the cycle out — this is
        // exactly why Goodlock-style analyses do not flag gate-protected
        // nesting.
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[9, 1], 2), dep(2, &[9, 2], 1)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn distinct_threads_required() {
        // One thread acquiring in both orders cannot deadlock with itself.
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(1, &[2], 1)]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
    }

    #[test]
    fn complex_cycles_not_reported() {
        // Two independent 2-cycles exist between (t1,t2) via locks 1,2 and
        // (t1,t2) via locks 3,4. The "complex" 4-component combination
        // must not be reported because cycles are not extended
        // (Algorithm 1 line 9) and threads must be distinct.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 1),
            dep(1, &[3], 4),
            dep(2, &[4], 3),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn three_cycle_with_two_cycle_subsumed_separately() {
        // A 2-cycle and a 3-cycle share a dependency; both are reported.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 1),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        let lengths: Vec<usize> = cycles.iter().map(|c| c.len()).collect();
        assert!(lengths.contains(&2));
        assert!(lengths.contains(&3));
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn max_cycle_length_limits_iterations() {
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::length_two_only());
        assert!(cycles.is_empty());
        assert!(stats.truncated);
        let (cycles, stats) = igoodlock_with_stats(
            &rel,
            &IGoodlockOptions {
                max_cycle_length: Some(3),
                ..IGoodlockOptions::default()
            },
        );
        assert_eq!(cycles.len(), 1);
        assert!(!stats.truncated || stats.iterations >= 2);
    }

    #[test]
    fn max_cycles_cap_respected() {
        // 9 combinations à la Collections: 3 methods × 3 methods.
        let mut deps = Vec::new();
        for m in 0..3u32 {
            deps.push(dep_ctx(1, 1, 2, m));
            deps.push(dep_ctx(2, 2, 1, m));
        }
        let rel = LockDependencyRelation::from_deps(deps);
        let all = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(all.len(), 9);
        let capped = igoodlock(
            &rel,
            &IGoodlockOptions {
                max_cycles: 4,
                ..IGoodlockOptions::default()
            },
        );
        assert_eq!(capped.len(), 4);
    }

    /// Like `dep` but with a context distinguished by `m` (different call
    /// sites for the same lock pair → distinct relation tuples).
    fn dep_ctx(t: u32, held: u32, lock: u32, m: u32) -> LockDep {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            vec![ObjId::new(100 + held)],
            ObjId::new(100 + lock),
            vec![l(&format!("m{m}:outer")), l(&format!("m{m}:inner"))],
        )
    }

    #[test]
    fn contexts_distinguish_cycles() {
        // Same lock pair, two different program contexts → two distinct
        // potential deadlock reports (the paper's Jigsaw example: "same
        // locks, acquired at different program locations").
        let rel = LockDependencyRelation::from_deps(vec![
            dep_ctx(1, 1, 2, 0),
            dep_ctx(1, 1, 2, 1),
            dep_ctx(2, 2, 1, 0),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn empty_relation_no_cycles() {
        let rel = LockDependencyRelation::default();
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert!(cycles.is_empty());
        assert_eq!(stats.iterations, 0);
        assert!(stats.chains_per_iteration.is_empty());
        assert_eq!(stats.peak_open_chains, 0);
        assert_eq!(stats.join_candidates_examined, 0);
    }

    #[test]
    fn chain_sizes_recorded_per_join_iteration() {
        // A 3-cycle: the join runs for two levels, starting from the three
        // length-1 chains of the relation.
        let rel = LockDependencyRelation::from_deps(vec![
            dep(1, &[1], 2),
            dep(2, &[2], 3),
            dep(3, &[3], 1),
        ]);
        let (cycles, stats) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(stats.chains_per_iteration.len(), stats.iterations);
        assert_eq!(stats.chains_per_iteration[0], rel.len() as u64);
        assert_eq!(
            stats.peak_open_chains,
            stats.chains_per_iteration.iter().copied().max().unwrap()
        );
        assert!(
            stats.chains_per_iteration.iter().sum::<u64>() <= stats.chains_built,
            "open chains per level never exceed the chains ever built"
        );
    }

    #[test]
    fn figure1_example_produces_expected_cycle() {
        // Figure 1 of the paper: t1 acquires o1 then o2 at sites 15/16;
        // t2 acquires o2 then o1 at the same sites.
        let rel = LockDependencyRelation::from_deps(vec![
            LockDep::exclusive(
                ThreadId::new(1),
                ObjId::new(25),
                vec![ObjId::new(122)],
                ObjId::new(123),
                vec![l("run:15"), l("run:16")],
            ),
            LockDep::exclusive(
                ThreadId::new(2),
                ObjId::new(26),
                vec![ObjId::new(123)],
                ObjId::new(122),
                vec![l("run:15"), l("run:16")],
            ),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.components()[0].contexts, vec![l("run:15"), l("run:16")]);
        assert_eq!(c.locks(), vec![ObjId::new(123), ObjId::new(122)]);
    }

    #[test]
    fn indexed_examines_fewer_candidates_than_naive() {
        // A relation with many tuples whose locksets never contain the
        // chain's last lock: the bucket index skips them; the naive scan
        // touches all of them.
        let mut deps = vec![dep(1, &[1], 2), dep(2, &[2], 1)];
        for i in 0..20u32 {
            deps.push(dep(3 + i, &[50 + i], 80 + i));
        }
        let rel = LockDependencyRelation::from_deps(deps);
        let (ic, is) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert_eq!(ic, nc);
        assert_eq!(is.chains_built, ns.chains_built);
        assert!(
            is.join_candidates_examined < ns.join_candidates_examined / 10,
            "indexed {} vs naive {}",
            is.join_candidates_examined,
            ns.join_candidates_examined
        );
    }

    #[test]
    fn read_read_holds_never_close_a_cycle() {
        use AcquireMode::{Exclusive, Shared};
        // t1 read-holds rw(=1) while taking m(=2); t2 holds m while
        // read-taking rw. With plain mutexes this is the classic 2-cycle;
        // with modes the closing edge is read-vs-read and vanishes.
        let rel = LockDependencyRelation::from_deps(vec![
            dep_m(1, &[(1, Shared)], 2, Exclusive),
            dep_m(2, &[(2, Exclusive)], 1, Shared),
        ]);
        assert!(igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
        assert!(naive_igoodlock(&rel, &IGoodlockOptions::default()).is_empty());
        // Sanity contrast: the all-exclusive version of the same shape
        // does cycle.
        let excl = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]);
        assert_eq!(igoodlock(&excl, &IGoodlockOptions::default()).len(), 1);
    }

    #[test]
    fn reader_writer_conflict_still_cycles() {
        use AcquireMode::{Exclusive, Shared};
        // Same shape, but t2 takes rw exclusively: a write acquisition
        // conflicts with t1's read hold, so the cycle is real and kept.
        let rel = LockDependencyRelation::from_deps(vec![
            dep_m(1, &[(1, Shared)], 2, Exclusive),
            dep_m(2, &[(2, Exclusive)], 1, Exclusive),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles, naive_igoodlock(&rel, &IGoodlockOptions::default()));
    }

    #[test]
    fn shared_gate_lock_does_not_prevent_cycle() {
        use AcquireMode::{Exclusive, Shared};
        // Both threads hold a common gate lock G(=9) — but only in read
        // mode, so both can be inside the "gate" at once and the
        // mode-aware 2(4) rightly keeps the cycle (contrast with
        // `gate_lock_prevents_cycle`, where the exclusive gate kills it).
        let rel = LockDependencyRelation::from_deps(vec![
            dep_m(1, &[(9, Shared), (1, Exclusive)], 2, Exclusive),
            dep_m(2, &[(9, Shared), (2, Exclusive)], 1, Exclusive),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles, naive_igoodlock(&rel, &IGoodlockOptions::default()));
    }

    #[test]
    fn read_read_candidates_pruned_at_the_bucket() {
        use AcquireMode::{Exclusive, Shared};
        // Ten readers hold rw(=50) shared; one writer-side chain ends in
        // a *shared* acquisition of rw. The exclusive-holders bucket for
        // rw is empty, so the indexed join examines zero candidates for
        // that chain, while the naive oracle scans (and rejects) all of
        // them — identical output, fewer tuples touched.
        let mut deps = vec![dep_m(1, &[(1, Exclusive)], 50, Shared)];
        for i in 0..10u32 {
            deps.push(dep_m(2 + i, &[(50, Shared)], 60 + i, Exclusive));
        }
        let rel = LockDependencyRelation::from_deps(deps);
        let (ic, is) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert_eq!(ic, nc);
        assert!(ic.is_empty());
        assert_eq!(is.chains_built, ns.chains_built);
        assert!(
            is.join_candidates_examined < ns.join_candidates_examined,
            "indexed {} vs naive {}",
            is.join_candidates_examined,
            ns.join_candidates_examined
        );
    }

    #[test]
    fn mode_distinguishes_otherwise_identical_cycles() {
        use AcquireMode::{Exclusive, Shared};
        // Two t1 tuples identical except for the acquisition mode of
        // lock 2: the dedup projection includes the mode, so both the
        // write-write and the read-write cycle are reported.
        let rel = LockDependencyRelation::from_deps(vec![
            dep_m(1, &[(1, Exclusive)], 2, Exclusive),
            dep_m(1, &[(1, Exclusive)], 2, Shared),
            dep(2, &[2], 1),
        ]);
        let cycles = igoodlock(&rel, &IGoodlockOptions::default());
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles, naive_igoodlock(&rel, &IGoodlockOptions::default()));
    }

    /// The fixture relations above, checked naive-vs-indexed under every
    /// truncation option (the proptest suite covers random relations).
    #[test]
    fn naive_and_indexed_agree_on_fixtures() {
        use AcquireMode::{Exclusive, Shared};
        let fixtures: Vec<LockDependencyRelation> = vec![
            LockDependencyRelation::from_deps(vec![
                dep_m(1, &[(1, Shared)], 2, Exclusive),
                dep_m(2, &[(2, Exclusive)], 1, Shared),
            ]),
            LockDependencyRelation::from_deps(vec![
                dep_m(1, &[(9, Shared), (1, Exclusive)], 2, Shared),
                dep_m(2, &[(9, Shared), (2, Shared)], 1, Exclusive),
                dep_m(3, &[(9, Exclusive)], 1, Shared),
            ]),
            LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]),
            LockDependencyRelation::from_deps(vec![
                dep(1, &[1], 2),
                dep(2, &[2], 3),
                dep(3, &[3], 1),
            ]),
            LockDependencyRelation::from_deps(vec![dep(1, &[9, 1], 2), dep(2, &[9, 2], 1)]),
            LockDependencyRelation::from_deps(vec![
                dep(1, &[1], 2),
                dep(2, &[2], 1),
                dep(2, &[2], 3),
                dep(3, &[3], 1),
            ]),
            LockDependencyRelation::from_deps(vec![
                dep_ctx(1, 1, 2, 0),
                dep_ctx(1, 1, 2, 1),
                dep_ctx(2, 2, 1, 0),
            ]),
            LockDependencyRelation::default(),
        ];
        let options = [
            IGoodlockOptions::default(),
            IGoodlockOptions::length_two_only(),
            IGoodlockOptions {
                max_cycles: 1,
                ..IGoodlockOptions::default()
            },
            IGoodlockOptions {
                max_open_chains: 2,
                ..IGoodlockOptions::default()
            },
        ];
        for rel in &fixtures {
            for opts in &options {
                // Call the index directly: these fixtures sit below the
                // small-relation dispatch, which would otherwise route
                // the public entry point straight to the oracle.
                let (ic, is) = igoodlock_indexed_filtered(rel, None, opts);
                let (nc, ns) = naive_igoodlock_with_stats(rel, opts);
                assert_eq!(ic, nc);
                assert_eq!(is.chains_built, ns.chains_built);
                assert_eq!(is.iterations, ns.iterations);
                assert_eq!(is.chains_per_iteration, ns.chains_per_iteration);
                assert_eq!(is.truncated, ns.truncated);
                assert_eq!(is.peak_open_chains, ns.peak_open_chains);
                // The public entry point dispatches between the two, so
                // it can only ever return this same answer.
                let (pc, ps) = igoodlock_filtered(rel, None, opts);
                assert_eq!(pc, nc);
                assert_eq!(ps.chains_built, ns.chains_built);
            }
        }
    }

    #[test]
    fn small_relations_skip_index_construction() {
        // Below the threshold the public join returns the oracle's exact
        // stats (per-chain candidate counts are |D|, the naive shape).
        let rel = LockDependencyRelation::from_deps(vec![dep(1, &[1], 2), dep(2, &[2], 1)]);
        assert!(rel.len() < SMALL_RELATION_FAST_PATH);
        let (c, s) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        assert_eq!(c, nc);
        assert_eq!(s, ns);
    }
}

#[cfg(test)]
pub(crate) mod proptests {
    use super::*;
    use df_events::{Label, ThreadId};
    use proptest::prelude::*;

    pub(crate) fn arb_relation() -> impl Strategy<Value = LockDependencyRelation> {
        prop::collection::vec(
            (
                1..5u32,                              // thread
                prop::collection::vec(0..6u32, 1..3), // held
                0..6u32,                              // lock
            ),
            0..14,
        )
        .prop_map(|tuples| {
            let deps = tuples
                .into_iter()
                .filter(|(_, held, lock)| !held.contains(lock))
                .map(|(t, held, lock)| {
                    let mut held: Vec<_> = held;
                    held.sort();
                    held.dedup();
                    LockDep::exclusive(
                        ThreadId::new(t),
                        df_events::ObjId::new(t),
                        held.iter()
                            .map(|&h| df_events::ObjId::new(100 + h))
                            .collect(),
                        df_events::ObjId::new(100 + lock),
                        (0..=held.len())
                            .map(|i| Label::new(&format!("p:{i}")))
                            .collect(),
                    )
                })
                .collect();
            LockDependencyRelation::from_deps(deps)
        })
    }

    /// Relations mixing shared and exclusive acquisitions and holds —
    /// the vocabulary rwlock-using programs produce.
    pub(crate) fn arb_mixed_relation() -> impl Strategy<Value = LockDependencyRelation> {
        use df_events::AcquireMode;
        prop::collection::vec(
            (
                1..5u32,                                         // thread
                prop::collection::vec((0..6u32, 0..2u32), 1..3), // held + shared?
                0..6u32,                                         // lock
                0..2u32,                                         // shared acquire?
            ),
            0..14,
        )
        .prop_map(|tuples| {
            let mode_of = |shared: u32| {
                if shared == 1 {
                    AcquireMode::Shared
                } else {
                    AcquireMode::Exclusive
                }
            };
            let deps = tuples
                .into_iter()
                .filter(|(_, held, lock, _)| held.iter().all(|&(h, _)| h != *lock))
                .map(|(t, held, lock, shared)| {
                    let mut held: Vec<_> = held;
                    held.sort_by_key(|&(h, _)| h);
                    held.dedup_by_key(|&mut (h, _)| h);
                    let mut dep = LockDep::exclusive(
                        ThreadId::new(t),
                        df_events::ObjId::new(t),
                        held.iter()
                            .map(|&(h, _)| df_events::ObjId::new(100 + h))
                            .collect(),
                        df_events::ObjId::new(100 + lock),
                        (0..=held.len())
                            .map(|i| Label::new(&format!("p:{i}")))
                            .collect(),
                    );
                    dep.mode = mode_of(shared);
                    dep.hold_modes = held.iter().map(|&(_, s)| mode_of(s)).collect();
                    dep
                })
                .collect();
            LockDependencyRelation::from_deps(deps)
        })
    }

    proptest! {
        /// Every reported cycle satisfies Definitions 2 and 3.
        #[test]
        fn cycles_satisfy_definitions(rel in arb_relation()) {
            let cycles = igoodlock(&rel, &IGoodlockOptions::default());
            for cycle in &cycles {
                let comps = cycle.components();
                let n = comps.len();
                prop_assert!(n >= 2);
                // distinct threads and locks
                let mut ts: Vec<_> = comps.iter().map(|c| c.thread).collect();
                ts.sort(); ts.dedup();
                prop_assert_eq!(ts.len(), n);
                let mut ls: Vec<_> = comps.iter().map(|c| c.lock).collect();
                ls.sort(); ls.dedup();
                prop_assert_eq!(ls.len(), n);
                // chain + closing conditions
                for i in 0..n {
                    let next = &comps[(i + 1) % n];
                    prop_assert!(next.lockset.contains(&comps[i].lock));
                }
                // pairwise disjoint locksets
                for i in 0..n {
                    for j in (i + 1)..n {
                        prop_assert!(comps[i]
                            .lockset
                            .iter()
                            .all(|l| !comps[j].lockset.contains(l)));
                    }
                }
                // duplicate suppression: rooted at minimal thread
                prop_assert!(comps.iter().all(|c| c.thread >= comps[0].thread));
            }
        }

        /// No cycle is reported twice (up to rotation).
        #[test]
        fn no_duplicate_cycles(rel in arb_relation()) {
            let cycles = igoodlock(&rel, &IGoodlockOptions::default());
            for i in 0..cycles.len() {
                for j in (i + 1)..cycles.len() {
                    let a: std::collections::BTreeSet<_> = cycles[i]
                        .components()
                        .iter()
                        .map(|c| (c.thread, c.lock, c.contexts.clone()))
                        .collect();
                    let b: std::collections::BTreeSet<_> = cycles[j]
                        .components()
                        .iter()
                        .map(|c| (c.thread, c.lock, c.contexts.clone()))
                        .collect();
                    prop_assert_ne!(a, b);
                }
            }
        }

        /// Length-2 truncation reports exactly the length-2 subset.
        #[test]
        fn truncation_is_a_prefix(rel in arb_relation()) {
            let all = igoodlock(&rel, &IGoodlockOptions::default());
            let short = igoodlock(&rel, &IGoodlockOptions::length_two_only());
            let all2 = all.iter().filter(|c| c.len() == 2).count();
            prop_assert_eq!(short.len(), all2);
            prop_assert!(short.iter().all(|c| c.len() == 2));
        }

        /// The indexed join is a pure strength reduction over the naive
        /// oracle: identical cycles in identical order, identical join
        /// shape, never more candidates examined.
        #[test]
        fn indexed_matches_naive_oracle(rel in arb_relation()) {
            let (ic, is) = igoodlock_indexed_filtered(&rel, None, &IGoodlockOptions::default());
            let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            prop_assert_eq!(ic, nc);
            prop_assert_eq!(is.chains_built, ns.chains_built);
            prop_assert_eq!(is.chains_per_iteration, ns.chains_per_iteration);
            prop_assert_eq!(is.truncated, ns.truncated);
            prop_assert!(is.join_candidates_examined <= ns.join_candidates_examined);
        }

        /// The same strength-reduction law on mode-mixing relations: the
        /// bucket split and the two-sided exclusive disjointness probes
        /// must accept/reject exactly what the scalar mode checks do.
        #[test]
        fn indexed_matches_naive_on_mixed_modes(rel in arb_mixed_relation()) {
            let (ic, is) = igoodlock_indexed_filtered(&rel, None, &IGoodlockOptions::default());
            let (nc, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            prop_assert_eq!(ic, nc);
            prop_assert_eq!(is.chains_built, ns.chains_built);
            prop_assert_eq!(is.chains_per_iteration, ns.chains_per_iteration);
            prop_assert_eq!(is.truncated, ns.truncated);
            prop_assert_eq!(is.peak_open_chains, ns.peak_open_chains);
            prop_assert!(is.join_candidates_examined <= ns.join_candidates_examined);
        }

        /// No reported cycle on a mixed-mode relation contains a
        /// read-read edge: every chain and closing edge conflicts.
        #[test]
        fn mixed_mode_cycles_have_no_read_read_edges(rel in arb_mixed_relation()) {
            let cycles = igoodlock(&rel, &IGoodlockOptions::default());
            for cycle in &cycles {
                let comps = cycle.components();
                let n = comps.len();
                for i in 0..n {
                    let next = &comps[(i + 1) % n];
                    let hold = next
                        .lockset
                        .iter()
                        .position(|&l| l == comps[i].lock)
                        .map(|j| next.hold_modes[j])
                        .expect("chain edge lock is held by the next component");
                    prop_assert!(crate::relation::modes_conflict(comps[i].mode, hold));
                }
            }
        }
    }
}
