//! The indexed iGoodlock join against its brute-force oracle: on
//! randomized relations and under every truncation option, the two must
//! produce **byte-identical** cycle reports (same cycles, same component
//! order, same serialization) and an identical join shape
//! (`chains_built`, `chains_per_iteration`, `truncated`).

use df_events::{AcquireMode, Label, ObjId, ThreadId};
use df_igoodlock::{
    igoodlock_with_stats, naive_igoodlock_with_stats, IGoodlockOptions, LockDep,
    LockDependencyRelation,
};
use proptest::prelude::*;

/// Random relations with enough thread/lock collisions to exercise every
/// Definition 2 predicate, plus repeated tuples to exercise relation
/// dedup and lockset-only differences to exercise cycle dedup. Shared
/// acquisitions and holds are mixed in so the mode-aware bucket split
/// and disjointness probes face the oracle too.
fn arb_relation() -> impl Strategy<Value = LockDependencyRelation> {
    prop::collection::vec(
        (
            1..6u32,                                         // thread
            prop::collection::vec((0..7u32, 0..2u32), 1..4), // held + shared?
            0..7u32,                                         // lock
            0..3u32,                                         // context variant
            0..2u32,                                         // shared acquire?
        ),
        0..18,
    )
    .prop_map(|tuples| {
        let mode_of = |shared: u32| {
            if shared == 1 {
                AcquireMode::Shared
            } else {
                AcquireMode::Exclusive
            }
        };
        let deps = tuples
            .into_iter()
            .filter(|(_, held, lock, _, _)| held.iter().all(|&(h, _)| h != *lock))
            .map(|(t, mut held, lock, ctx, shared)| {
                held.sort_by_key(|&(h, _)| h);
                held.dedup_by_key(|&mut (h, _)| h);
                let mut dep = LockDep::exclusive(
                    ThreadId::new(t),
                    ObjId::new(t),
                    held.iter().map(|&(h, _)| ObjId::new(100 + h)).collect(),
                    ObjId::new(100 + lock),
                    (0..=held.len())
                        .map(|i| Label::new(&format!("ivn:{ctx}:{i}")))
                        .collect(),
                );
                dep.mode = mode_of(shared);
                dep.hold_modes = held.iter().map(|&(_, s)| mode_of(s)).collect();
                dep
            })
            .collect();
        LockDependencyRelation::from_deps(deps)
    })
}

fn option_matrix() -> Vec<IGoodlockOptions> {
    vec![
        IGoodlockOptions::default(),
        IGoodlockOptions::length_two_only(),
        IGoodlockOptions {
            max_cycle_length: Some(3),
            ..IGoodlockOptions::default()
        },
        IGoodlockOptions {
            max_cycles: 2,
            ..IGoodlockOptions::default()
        },
        IGoodlockOptions {
            max_open_chains: 3,
            ..IGoodlockOptions::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Byte-identical reports and identical join shape under every
    /// bounding option, including the ones that truncate mid-join.
    #[test]
    fn indexed_is_byte_identical_to_naive(rel in arb_relation()) {
        for options in option_matrix() {
            let (ic, is) = igoodlock_with_stats(&rel, &options);
            let (nc, ns) = naive_igoodlock_with_stats(&rel, &options);
            let ij = serde_json::to_string(&ic).expect("serialize");
            let nj = serde_json::to_string(&nc).expect("serialize");
            prop_assert_eq!(ij, nj);
            prop_assert_eq!(is.chains_built, ns.chains_built);
            prop_assert_eq!(is.iterations, ns.iterations);
            prop_assert_eq!(&is.chains_per_iteration, &ns.chains_per_iteration);
            prop_assert_eq!(is.truncated, ns.truncated);
            prop_assert_eq!(is.peak_open_chains, ns.peak_open_chains);
            prop_assert_eq!(is.pruned_by_hb, ns.pruned_by_hb);
        }
    }

    /// The index never examines more candidates than the brute-force
    /// scan (the whole point of bucketing by held lock).
    #[test]
    fn index_never_examines_more_candidates(rel in arb_relation()) {
        let (_, is) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        let (_, ns) = naive_igoodlock_with_stats(&rel, &IGoodlockOptions::default());
        prop_assert!(is.join_candidates_examined <= ns.join_candidates_examined);
    }
}
