//! Oracle test: Algorithm 1's iterative join must agree with a
//! brute-force enumeration of Definition 2/3 on small relations.

use std::collections::BTreeSet;

use df_events::{Label, ObjId, ThreadId};
use df_igoodlock::{igoodlock, IGoodlockOptions, LockDep, LockDependencyRelation};
use proptest::prelude::*;

/// Brute force: try every permutation of every subset of tuples and check
/// Definitions 2 and 3 directly. Returns canonical cycle keys (the
/// (thread, lock, contexts) projection, rotated to start at the minimum
/// thread — matching iGoodlock's §2.2.3 duplicate suppression and its
/// projection-level deduplication).
fn brute_force_cycles(rel: &LockDependencyRelation) -> BTreeSet<Vec<String>> {
    let deps = rel.deps();
    let n = deps.len();
    let mut found = BTreeSet::new();
    // Enumerate sequences (permutations of subsets) up to length 4 via
    // DFS over indices.
    fn dfs(deps: &[LockDep], chain: &mut Vec<usize>, found: &mut BTreeSet<Vec<String>>) {
        let m = chain.len();
        if m >= 2 {
            // Check Definition 2 on the whole chain.
            let ok = {
                let threads: Vec<_> = chain.iter().map(|&i| deps[i].thread).collect();
                let locks: Vec<_> = chain.iter().map(|&i| deps[i].lock).collect();
                let distinct_threads = threads.iter().collect::<BTreeSet<_>>().len() == m;
                let distinct_locks = locks.iter().collect::<BTreeSet<_>>().len() == m;
                let chained = (0..m - 1).all(|i| deps[chain[i + 1]].lockset.contains(&locks[i]));
                let disjoint = (0..m).all(|i| {
                    (i + 1..m).all(|j| {
                        deps[chain[i]]
                            .lockset
                            .iter()
                            .all(|l| !deps[chain[j]].lockset.contains(l))
                    })
                });
                distinct_threads && distinct_locks && chained && disjoint
            };
            if ok {
                // Definition 3: closes?
                let last_lock = deps[*chain.last().unwrap()].lock;
                if deps[chain[0]].lockset.contains(&last_lock) {
                    // Canonicalize: rotate so the minimum thread id leads.
                    let min_pos = (0..m).min_by_key(|&i| deps[chain[i]].thread).unwrap();
                    let key: Vec<String> = (0..m)
                        .map(|i| {
                            let d = &deps[chain[(min_pos + i) % m]];
                            format!(
                                "{}|{}|{:?}",
                                d.thread,
                                d.lock,
                                d.contexts.iter().map(|l| l.to_string()).collect::<Vec<_>>()
                            )
                        })
                        .collect();
                    found.insert(key);
                    // iGoodlock does not extend closed cycles; neither do
                    // we (no complex cycles).
                    return;
                }
            } else {
                return; // prefix already invalid
            }
        }
        if m >= 4 {
            return;
        }
        for i in 0..deps.len() {
            if chain.contains(&i) {
                continue;
            }
            chain.push(i);
            dfs(deps, chain, found);
            chain.pop();
        }
    }
    if n <= 8 {
        let mut chain = Vec::new();
        dfs(deps, &mut chain, &mut found);
    }
    found
}

fn igoodlock_cycle_keys(rel: &LockDependencyRelation) -> BTreeSet<Vec<String>> {
    igoodlock(rel, &IGoodlockOptions::default())
        .iter()
        .map(|c| {
            let comps = c.components();
            let m = comps.len();
            let min_pos = (0..m).min_by_key(|&i| comps[i].thread).unwrap();
            (0..m)
                .map(|i| {
                    let comp = &comps[(min_pos + i) % m];
                    format!(
                        "{}|{}|{:?}",
                        comp.thread,
                        comp.lock,
                        comp.contexts
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                    )
                })
                .collect()
        })
        .collect()
}

fn arb_relation() -> impl Strategy<Value = LockDependencyRelation> {
    prop::collection::vec(
        (
            1..4u32,
            prop::collection::vec(0..5u32, 1..3),
            0..5u32,
            0..3u32,
        ),
        0..7,
    )
    .prop_map(|tuples| {
        let deps = tuples
            .into_iter()
            .filter(|(_, held, lock, _)| !held.contains(lock))
            .map(|(t, mut held, lock, ctx)| {
                held.sort();
                held.dedup();
                LockDep::exclusive(
                    ThreadId::new(t),
                    ObjId::new(t),
                    held.iter().map(|&h| ObjId::new(100 + h)).collect(),
                    ObjId::new(100 + lock),
                    (0..=held.len())
                        .map(|i| Label::new(&format!("o:{ctx}:{i}")))
                        .collect(),
                )
            })
            .collect();
        LockDependencyRelation::from_deps(deps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Algorithm 1 finds exactly the brute-force cycle set (up to the
    /// paper's duplicate suppression) for cycles of length ≤ 4.
    #[test]
    fn igoodlock_matches_brute_force(rel in arb_relation()) {
        let expected = brute_force_cycles(&rel);
        let got = igoodlock_cycle_keys(&rel);
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn oracle_sanity_two_cycle() {
    // A hand-checked case so the oracle itself is trusted.
    let dep = |t: u32, held: u32, lock: u32| {
        LockDep::exclusive(
            ThreadId::new(t),
            ObjId::new(t),
            vec![ObjId::new(100 + held)],
            ObjId::new(100 + lock),
            vec![Label::new("s:0"), Label::new("s:1")],
        )
    };
    let rel = LockDependencyRelation::from_deps(vec![dep(1, 1, 2), dep(2, 2, 1)]);
    let expected = brute_force_cycles(&rel);
    assert_eq!(expected.len(), 1);
    assert_eq!(igoodlock_cycle_keys(&rel), expected);
}
