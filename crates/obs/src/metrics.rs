//! The `metrics.json` document.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::counters::CounterSnapshot;
use crate::timing::PhaseSpan;

/// Schema identifier written into every metrics document, bumped on
/// incompatible changes so downstream diff tooling can refuse mixed
/// comparisons.
pub const METRICS_SCHEMA: &str = "df-metrics-v1";

/// The campaign metrics document (`dfz --metrics-out`, `BENCH_*.json`).
///
/// This is the machine-readable counterpart of the paper's Table 1 row:
/// campaign counters, per-phase wall-clock spans, and free-form extra
/// gauges (reproduction probability, iGoodlock join statistics, ...).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Schema identifier ([`METRICS_SCHEMA`]).
    pub schema: String,
    /// The program / benchmark the campaign ran on.
    pub program: String,
    /// Campaign counters.
    pub counters: CounterSnapshot,
    /// Aggregated wall-clock spans, sorted by name.
    pub phases: Vec<PhaseSpan>,
    /// Free-form extra gauges, sorted by name.
    pub extra: BTreeMap<String, f64>,
}

impl Metrics {
    /// Creates an empty document for `program` with the current schema.
    pub fn new(program: &str) -> Self {
        Metrics {
            schema: METRICS_SCHEMA.to_string(),
            program: program.to_string(),
            ..Metrics::default()
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("Metrics serializes")
    }

    /// Parses a document, checking the schema identifier.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let m: Metrics = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if m.schema != METRICS_SCHEMA {
            return Err(format!(
                "schema mismatch: expected {METRICS_SCHEMA}, got {}",
                m.schema
            ));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut m = Metrics::new("figure1");
        m.counters.acquires_observed = 4;
        m.phases.push(PhaseSpan {
            name: "phase1".into(),
            micros: 120,
            count: 1,
        });
        m.extra.insert("probability".into(), 0.95);
        let back = Metrics::from_json(&m.to_json_pretty()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut m = Metrics::new("figure1");
        m.schema = "df-metrics-v0".into();
        let err = Metrics::from_json(&serde_json::to_string(&m).unwrap()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }
}
