//! Deterministic JSONL scheduler trace sink.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use df_events::ThreadId;
use serde::{Deserialize, Serialize};

/// One scheduler decision, streamed as a single JSONL line.
///
/// Records carry *logical* data only — step counters, thread ids and
/// names, object abstractions — never wall-clock timestamps, so a trace
/// of a seeded virtual-runtime run is byte-identical across repetitions
/// (the golden-trace determinism guarantee; timings belong in
/// [`crate::Metrics`] instead).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The active scheduler paused a thread before an acquire
    /// (Algorithm 3 line 15).
    Pause {
        /// Schedule points executed so far.
        step: u64,
        /// The paused thread.
        thread: ThreadId,
        /// Its human-readable name.
        name: String,
        /// Abstraction of the lock it was about to acquire.
        lock: String,
        /// The acquisition site label.
        site: String,
    },
    /// A paused thread was released back into the enabled set.
    Unpause {
        /// Schedule points executed so far.
        step: u64,
        /// The released thread.
        thread: ThreadId,
        /// Its human-readable name.
        name: String,
    },
    /// Every enabled thread was paused; one was released at random
    /// (paper §2.3).
    Thrash {
        /// Schedule points executed so far.
        step: u64,
        /// The randomly released thread.
        thread: ThreadId,
        /// Its human-readable name.
        name: String,
    },
    /// The §4 optimization yielded a thread instead of pausing it.
    Yield {
        /// Schedule points executed so far.
        step: u64,
        /// The yielded thread.
        thread: ThreadId,
        /// Its human-readable name.
        name: String,
        /// The acquisition site that triggered the yield.
        site: String,
    },
    /// `checkRealDeadlock` (Algorithm 4) ran over the paused threads.
    CheckRealDeadlock {
        /// Schedule points executed so far.
        step: u64,
        /// Whether a real hold/wait cycle was found among paused threads.
        verdict: bool,
        /// Length of the cycle found (0 when `verdict` is false).
        cycle_len: usize,
    },
    /// A planned fault fired inside the runtime.
    FaultInjected {
        /// Schedule points executed so far.
        step: u64,
        /// Which fault (`panic_on_acquire`, `leak_release`,
        /// `spurious_wakeup`, `runaway_spawn`).
        kind: String,
        /// The thread the fault hit.
        thread: ThreadId,
    },
    /// One directed run of the systematic explorer finished.
    ExploreRun {
        /// Zero-based run number.
        run: usize,
        /// Whether this run ended in a deadlock.
        deadlock: bool,
    },
    /// The campaign driver retried a degraded Phase II trial with a
    /// rotated seed.
    TrialRetry {
        /// The trial's position in the campaign.
        trial: u32,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// The degraded outcome that triggered the retry.
        outcome: String,
    },
    /// A pipeline phase began (no wall-clock data on purpose).
    PhaseStart {
        /// Phase name (`phase1`, `phase2`, ...).
        phase: String,
    },
    /// A pipeline phase ended.
    PhaseEnd {
        /// Phase name (`phase1`, `phase2`, ...).
        phase: String,
    },
}

enum Target {
    Memory(Vec<u8>),
    File(BufWriter<File>),
}

/// A JSONL sink for [`TraceEvent`] streams: one serialized event per
/// line, written either to an in-memory buffer (tests, diffing) or
/// streamed to a file (`dfz --trace-out`).
pub struct JsonlSink {
    target: Target,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            Target::Memory(ref buf) => write!(f, "JsonlSink::Memory({} bytes)", buf.len()),
            Target::File(_) => write!(f, "JsonlSink::File"),
        }
    }
}

impl JsonlSink {
    /// A sink that accumulates lines in memory; read back with
    /// [`JsonlSink::contents`].
    pub fn memory() -> Self {
        JsonlSink {
            target: Target::Memory(Vec::new()),
        }
    }

    /// A sink streaming to the file at `path` (truncating it).
    pub fn file(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            target: Target::File(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one event as a JSONL line. Serialization is infallible
    /// for [`TraceEvent`]; file I/O errors are swallowed (observability
    /// must never abort the run being observed).
    pub fn emit(&mut self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("TraceEvent serializes");
        match self.target {
            Target::Memory(ref mut buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
            Target::File(ref mut w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Appends already-serialized JSONL text verbatim (the buffered
    /// trace of a per-worker memory shard, replayed into the campaign
    /// sink in deterministic trial order). `text` must be empty or end
    /// with a newline, which every shard buffer does by construction.
    pub fn append_raw(&mut self, text: &str) {
        match self.target {
            Target::Memory(ref mut buf) => buf.extend_from_slice(text.as_bytes()),
            Target::File(ref mut w) => {
                let _ = w.write_all(text.as_bytes());
            }
        }
    }

    /// Flushes buffered lines to the underlying file (no-op in memory).
    pub fn flush(&mut self) {
        if let Target::File(ref mut w) = self.target {
            let _ = w.flush();
        }
    }

    /// The accumulated JSONL text of a memory sink (`None` for files).
    pub fn contents(&self) -> Option<String> {
        match self.target {
            Target::Memory(ref buf) => Some(String::from_utf8_lossy(buf).into_owned()),
            Target::File(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates_jsonl() {
        let mut sink = JsonlSink::memory();
        sink.emit(&TraceEvent::PhaseStart {
            phase: "phase1".into(),
        });
        sink.emit(&TraceEvent::Thrash {
            step: 9,
            thread: ThreadId::new(2),
            name: "t2".into(),
        });
        let text = sink.contents().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(
                matches!(v, serde_json::Value::Obj(_)),
                "each line is one JSON object: {line}"
            );
        }
        assert!(lines[1].contains("Thrash"));
    }

    #[test]
    fn events_round_trip_through_serde() {
        let e = TraceEvent::CheckRealDeadlock {
            step: 41,
            verdict: true,
            cycle_len: 2,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn file_sink_streams_lines() {
        let dir = std::env::temp_dir().join("df-obs-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let mut sink = JsonlSink::file(&path).unwrap();
        sink.emit(&TraceEvent::ExploreRun {
            run: 0,
            deadlock: false,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
