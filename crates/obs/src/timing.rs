//! Per-phase wall-clock timing spans.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// One aggregated timing span, as it lands in `metrics.json`.
///
/// Repeated spans with the same name (e.g. `phase2` once per trial) are
/// merged: `micros` accumulates and `count` records how many times the
/// span ran.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Span name (`phase1`, `phase2`, `probability`, ...).
    pub name: String,
    /// Total wall-clock time spent in this span, in microseconds.
    pub micros: u64,
    /// Number of times the span was recorded.
    pub count: u64,
}

/// Aggregates named wall-clock spans across a campaign.
///
/// Timings deliberately live *outside* the JSONL trace: traces must be
/// byte-identical across seeded runs, wall clocks are not.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    spans: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl PhaseTimings {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed span of `duration` under `name`.
    pub fn record(&self, name: &str, duration: Duration) {
        let mut spans = self.spans.lock().expect("timings lock");
        let e = spans.entry(name.to_string()).or_insert((0, 0));
        e.0 += duration.as_micros() as u64;
        e.1 += 1;
    }

    /// Runs `f`, recording its wall-clock duration under `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let r = f();
        self.record(name, start.elapsed());
        r
    }

    /// Folds already-aggregated spans (a per-worker shard's
    /// [`PhaseTimings::snapshot`]) into this aggregate.
    pub fn merge(&self, other: &[PhaseSpan]) {
        let mut spans = self.spans.lock().expect("timings lock");
        for span in other {
            let e = spans.entry(span.name.clone()).or_insert((0, 0));
            e.0 += span.micros;
            e.1 += span.count;
        }
    }

    /// The recorded spans, sorted by name.
    pub fn snapshot(&self) -> Vec<PhaseSpan> {
        self.spans
            .lock()
            .expect("timings lock")
            .iter()
            .map(|(name, &(micros, count))| PhaseSpan {
                name: name.clone(),
                micros,
                count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_by_name() {
        let t = PhaseTimings::new();
        t.record("phase2", Duration::from_micros(5));
        t.record("phase2", Duration::from_micros(7));
        t.record("phase1", Duration::from_micros(3));
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "phase1");
        assert_eq!(spans[1].micros, 12);
        assert_eq!(spans[1].count, 2);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let t = PhaseTimings::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].count, 1);
    }
}
