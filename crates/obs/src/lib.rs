//! Observability layer for the DeadlockFuzzer pipeline.
//!
//! The paper's evaluation (§5) is all measurement — reproduction
//! probability, thrash counts (§2.3), yield savings (§4) — so every layer
//! of this workspace reports into the shared handle defined here:
//!
//! * [`Counters`] — a lock-free registry of campaign counters (acquires
//!   observed, dependency edges, cycles found, pauses, thrashes, yields,
//!   trial retries, injected faults);
//! * [`PhaseTimings`] — per-phase wall-clock spans;
//! * [`JsonlSink`] — a JSONL stream of scheduler decisions
//!   ([`TraceEvent`]): pause/unpause/thrash/yield and `checkRealDeadlock`
//!   verdicts, with thread names and object abstractions attached.
//!
//! The split is deliberate: trace lines carry logical data only and are
//! byte-identical across seeded virtual-runtime runs (the golden-trace
//! determinism test relies on this), while wall-clock data lives in the
//! [`Metrics`] document.
//!
//! # Example
//!
//! ```
//! use df_obs::{Obs, TraceEvent};
//!
//! let obs = Obs::with_memory_sink();
//! obs.counters().add_acquires_observed(1);
//! obs.emit(&TraceEvent::PhaseStart { phase: "phase1".into() });
//! assert_eq!(obs.trace_contents().unwrap().lines().count(), 1);
//! assert_eq!(obs.metrics("demo").counters.acquires_observed, 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod counters;
mod metrics;
mod sink;
mod timing;

use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

pub use counters::{CounterSnapshot, Counters};
pub use metrics::{Metrics, METRICS_SCHEMA};
pub use sink::{JsonlSink, TraceEvent};
pub use timing::{PhaseSpan, PhaseTimings};

/// The shared observability handle threaded through every layer.
///
/// Cloning is cheap and shares the underlying counters, timings and sink
/// (the clone in a `RunConfig` and the clone in an `ActiveConfig` report
/// into the same registry). The default handle has no sink: counting is
/// always on (relaxed atomic adds), tracing is opt-in.
#[derive(Clone, Default)]
pub struct Obs {
    counters: Arc<Counters>,
    timings: Arc<PhaseTimings>,
    sink: Option<Arc<Mutex<JsonlSink>>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("counters", &self.counters.snapshot())
            .field("sink", &self.sink.as_ref().map(|s| s.lock().unwrap()))
            .finish()
    }
}

impl Obs {
    /// A handle with fresh counters and no trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle whose sink accumulates JSONL in memory; read back with
    /// [`Obs::trace_contents`].
    pub fn with_memory_sink() -> Self {
        Obs {
            sink: Some(Arc::new(Mutex::new(JsonlSink::memory()))),
            ..Obs::default()
        }
    }

    /// A handle whose sink streams JSONL to the file at `path`.
    pub fn with_file_sink(path: &Path) -> std::io::Result<Self> {
        Ok(Obs {
            sink: Some(Arc::new(Mutex::new(JsonlSink::file(path)?))),
            ..Obs::default()
        })
    }

    /// The shared counter registry.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The shared phase timings.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// Whether a trace sink is attached (lets hot paths skip building
    /// event payloads when nobody listens).
    pub fn traces(&self) -> bool {
        self.sink.is_some()
    }

    /// Streams one scheduler decision to the sink, if any.
    pub fn emit(&self, event: &TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("sink lock").emit(event);
        }
    }

    /// Flushes the sink's buffered lines, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("sink lock").flush();
        }
    }

    /// The accumulated JSONL of a memory sink (`None` for file sinks or
    /// when no sink is attached).
    pub fn trace_contents(&self) -> Option<String> {
        self.sink
            .as_ref()
            .and_then(|s| s.lock().expect("sink lock").contents())
    }

    /// A detached shard for one parallel worker: fresh counters and
    /// timings, and a memory sink iff this handle traces, so a trial
    /// running on another thread records into private state that can be
    /// folded back with [`Obs::absorb`] in deterministic trial order.
    pub fn fork_shard(&self) -> Obs {
        if self.traces() {
            Obs::with_memory_sink()
        } else {
            Obs::new()
        }
    }

    /// Folds a detached shard (see [`Obs::fork_shard`]) into this
    /// handle: counter deltas and timing spans are added, and the
    /// shard's buffered trace lines are appended verbatim to this
    /// handle's sink. Callers absorb shards in trial order, which keeps
    /// the merged trace byte-identical to a sequential run.
    pub fn absorb(&self, shard: &Obs) {
        self.counters.merge(&shard.counters.snapshot());
        self.timings.merge(&shard.timings.snapshot());
        if let Some(sink) = &self.sink {
            if let Some(text) = shard.trace_contents() {
                sink.lock().expect("sink lock").append_raw(&text);
            }
        }
    }

    /// Assembles the current [`Metrics`] document for `program`.
    pub fn metrics(&self, program: &str) -> Metrics {
        Metrics {
            counters: self.counters.snapshot(),
            phases: self.timings.snapshot(),
            ..Metrics::new(program)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_counters_and_sink() {
        let obs = Obs::with_memory_sink();
        let clone = obs.clone();
        clone.counters().add_thrash_events(2);
        clone.emit(&TraceEvent::PhaseEnd {
            phase: "phase2".into(),
        });
        assert_eq!(obs.counters().snapshot().thrash_events, 2);
        assert_eq!(obs.trace_contents().unwrap().lines().count(), 1);
    }

    #[test]
    fn default_handle_counts_but_does_not_trace() {
        let obs = Obs::new();
        assert!(!obs.traces());
        obs.emit(&TraceEvent::PhaseStart {
            phase: "phase1".into(),
        });
        assert!(obs.trace_contents().is_none());
        obs.counters().add_yields_taken(1);
        assert_eq!(obs.metrics("x").counters.yields_taken, 1);
    }

    #[test]
    fn shards_match_the_parent_tracing_mode() {
        let tracing = Obs::with_memory_sink();
        assert!(tracing.fork_shard().traces());
        let quiet = Obs::new();
        assert!(!quiet.fork_shard().traces());
    }

    #[test]
    fn absorb_merges_counters_timings_and_trace_lines_in_order() {
        let parent = Obs::with_memory_sink();
        parent.emit(&TraceEvent::PhaseStart {
            phase: "phase2".into(),
        });
        let a = parent.fork_shard();
        a.counters().add_threads_paused(2);
        a.timings()
            .record("phase2", std::time::Duration::from_micros(5));
        a.emit(&TraceEvent::PhaseEnd { phase: "a".into() });
        let b = parent.fork_shard();
        b.counters().add_threads_paused(1);
        b.emit(&TraceEvent::PhaseEnd { phase: "b".into() });
        parent.absorb(&a);
        parent.absorb(&b);
        assert_eq!(parent.counters().snapshot().threads_paused, 3);
        let spans = parent.timings().snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].count, 1);
        let text = parent.trace_contents().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("PhaseStart"));
        assert!(lines[1].contains("\"a\""), "{text}");
        assert!(lines[2].contains("\"b\""), "{text}");
    }

    #[test]
    fn absorb_into_a_sinkless_handle_keeps_counters() {
        let parent = Obs::new();
        let shard = parent.fork_shard();
        shard.counters().add_yields_taken(4);
        parent.absorb(&shard);
        assert_eq!(parent.counters().snapshot().yields_taken, 4);
        assert!(parent.trace_contents().is_none());
    }

    #[test]
    fn metrics_carry_schema_and_program() {
        let obs = Obs::new();
        obs.timings()
            .record("phase1", std::time::Duration::from_micros(10));
        let m = obs.metrics("figure1");
        assert_eq!(m.schema, METRICS_SCHEMA);
        assert_eq!(m.program, "figure1");
        assert_eq!(m.phases.len(), 1);
    }
}
