//! Lock-free campaign counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A lock-free registry of the campaign-wide counters the paper's
/// evaluation (§5) reports: observed acquisitions, recorded dependency
/// edges, cycles found, scheduler pauses/thrashes/yields, trial retries
/// and injected faults.
///
/// Every field is a relaxed [`AtomicU64`]; incrementing from program
/// threads, the controller, and the campaign driver concurrently is safe
/// and never blocks. Read a consistent-enough view with
/// [`Counters::snapshot`].
#[derive(Debug, Default)]
pub struct Counters {
    acquires_observed: AtomicU64,
    dependency_edges: AtomicU64,
    cycles_found: AtomicU64,
    threads_paused: AtomicU64,
    thrash_events: AtomicU64,
    yields_taken: AtomicU64,
    trial_retries: AtomicU64,
    faults_injected: AtomicU64,
    join_candidates_examined: AtomicU64,
    join_chains_built: AtomicU64,
    join_tasks_executed: AtomicU64,
    join_steal_waits: AtomicU64,
    events_streamed: AtomicU64,
    wfg_edges: AtomicU64,
    wfg_cycles_detected: AtomicU64,
    lock_timeouts: AtomicU64,
    poisoned_recovered: AtomicU64,
    spill_backpressure_waits: AtomicU64,
    cycles_pruned_infeasible: AtomicU64,
    trials_saved: AtomicU64,
    peak_trace_bytes: AtomicU64,
}

/// A plain-data copy of [`Counters`] taken at one instant, the form that
/// lands in `metrics.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// First (non-re-entrant) lock acquisitions observed by any runtime.
    pub acquires_observed: u64,
    /// Lock dependency relation edges recorded for iGoodlock.
    pub dependency_edges: u64,
    /// Potential deadlock cycles reported by iGoodlock.
    pub cycles_found: u64,
    /// Times the active scheduler paused a thread before an acquire.
    pub threads_paused: u64,
    /// Thrashings: every enabled thread was paused and one was released
    /// at random (paper §2.3).
    pub thrash_events: u64,
    /// Yields injected by the §4 optimization.
    pub yields_taken: u64,
    /// Phase II trials retried after a degraded outcome.
    pub trial_retries: u64,
    /// Faults injected by an active fault plan.
    pub faults_injected: u64,
    /// Relation tuples examined as candidates by the iGoodlock join
    /// index (the denominator of the index hit rate).
    pub join_candidates_examined: u64,
    /// Chains built by the iGoodlock join across all iterations.
    pub join_chains_built: u64,
    /// Join tasks (frontier chunks) executed by the parallel Phase I
    /// join. Scheduling observability only: unlike the result-derived
    /// join counters this varies with `phase1_jobs` (and with nothing
    /// else), so jobs-invariance comparisons exclude it.
    pub join_tasks_executed: u64,
    /// Times a parallel-join worker found the iteration's task queue
    /// drained when it went back for more work. Varies with
    /// `phase1_jobs`, like [`Self::join_tasks_executed`].
    pub join_steal_waits: u64,
    /// Events delivered to streaming [`df_events::EventSink`]s.
    pub events_streamed: u64,
    /// Wait edges registered in the live wait-for graph (one per
    /// contended native acquire).
    pub wfg_edges: u64,
    /// Deadlock cycles the online wait-for-graph detector reported.
    pub wfg_cycles_detected: u64,
    /// Timed native acquisitions (`try_lock_for`) that gave up and
    /// returned a recoverable error instead of blocking forever.
    pub lock_timeouts: u64,
    /// Poisoned native locks whose guards were recovered via
    /// `PoisonError::into_inner` (release events still emitted).
    pub poisoned_recovered: u64,
    /// Times an emitting thread blocked because its ring-buffered spill
    /// writer could not keep up (one per stall episode, not per retry).
    /// Zero means the spill ring never applied backpressure.
    pub spill_backpressure_waits: u64,
    /// Cycles the feasibility layer scored `Infeasible` and the adaptive
    /// allocator therefore skipped without spending a single trial.
    pub cycles_pruned_infeasible: u64,
    /// Phase II trials the adaptive allocator did not run compared to a
    /// uniform `confirm_trials`-per-cycle campaign (early confirmation
    /// stops, infeasible pruning, and total-budget caps all contribute).
    pub trials_saved: u64,
    /// Largest in-memory event-trace footprint (approximate bytes) any
    /// single run materialized. A fully streamed observation keeps this
    /// at zero — the assertion behind `dfz record --stream`. Unlike the
    /// other counters this is a high-water mark: merging shards takes
    /// the maximum, not the sum.
    pub peak_trace_bytes: u64,
}

macro_rules! counter_methods {
    (
        add { $($(#[$doc:meta])* $field:ident => $add:ident;)* }
        max { $($(#[$mdoc:meta])* $mfield:ident => $record:ident;)* }
    ) => {
        $(
            $(#[$doc])*
            pub fn $add(&self, n: u64) {
                self.$field.fetch_add(n, Ordering::Relaxed);
            }
        )*

        $(
            $(#[$mdoc])*
            pub fn $record(&self, n: u64) {
                self.$mfield.fetch_max(n, Ordering::Relaxed);
            }
        )*

        /// Copies every counter into a serializable snapshot.
        pub fn snapshot(&self) -> CounterSnapshot {
            CounterSnapshot {
                $($field: self.$field.load(Ordering::Relaxed),)*
                $($mfield: self.$mfield.load(Ordering::Relaxed),)*
            }
        }

        /// Folds a per-worker counter shard into the campaign rollup
        /// after its trial completes: additive counters are summed,
        /// high-water marks are maxed — which is what keeps campaign
        /// metrics invariant under how trials are partitioned across
        /// workers.
        pub fn merge(&self, delta: &CounterSnapshot) {
            $(self.$field.fetch_add(delta.$field, Ordering::Relaxed);)*
            $(self.$mfield.fetch_max(delta.$mfield, Ordering::Relaxed);)*
        }
    };
}

impl Counters {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    counter_methods! {
        add {
            /// Counts `n` observed first lock acquisitions.
            acquires_observed => add_acquires_observed;
            /// Counts `n` recorded lock dependency edges.
            dependency_edges => add_dependency_edges;
            /// Counts `n` potential cycles reported by iGoodlock.
            cycles_found => add_cycles_found;
            /// Counts `n` scheduler pauses.
            threads_paused => add_threads_paused;
            /// Counts `n` thrash events.
            thrash_events => add_thrash_events;
            /// Counts `n` injected yields.
            yields_taken => add_yields_taken;
            /// Counts `n` retried trials.
            trial_retries => add_trial_retries;
            /// Counts `n` injected faults.
            faults_injected => add_faults_injected;
            /// Counts `n` join candidates examined by iGoodlock.
            join_candidates_examined => add_join_candidates_examined;
            /// Counts `n` chains built by the iGoodlock join.
            join_chains_built => add_join_chains_built;
            /// Counts `n` parallel-join tasks executed.
            join_tasks_executed => add_join_tasks_executed;
            /// Counts `n` drained-queue observations by join workers.
            join_steal_waits => add_join_steal_waits;
            /// Counts `n` events delivered to streaming sinks.
            events_streamed => add_events_streamed;
            /// Counts `n` wait edges registered in the live wait-for graph.
            wfg_edges => add_wfg_edges;
            /// Counts `n` cycles reported by the online detector.
            wfg_cycles_detected => add_wfg_cycles_detected;
            /// Counts `n` timed acquisitions that gave up.
            lock_timeouts => add_lock_timeouts;
            /// Counts `n` poisoned locks recovered.
            poisoned_recovered => add_poisoned_recovered;
            /// Counts `n` spill-ring backpressure stalls.
            spill_backpressure_waits => add_spill_backpressure_waits;
            /// Counts `n` cycles pruned as infeasible before any trial.
            cycles_pruned_infeasible => add_cycles_pruned_infeasible;
            /// Counts `n` trials saved relative to uniform allocation.
            trials_saved => add_trials_saved;
        }
        max {
            /// Raises the in-memory trace high-water mark to `n` bytes
            /// if `n` exceeds the current mark.
            peak_trace_bytes => record_peak_trace_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        assert_eq!(Counters::new().snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn adds_accumulate() {
        let c = Counters::new();
        c.add_acquires_observed(2);
        c.add_acquires_observed(3);
        c.add_thrash_events(1);
        let s = c.snapshot();
        assert_eq!(s.acquires_observed, 5);
        assert_eq!(s.thrash_events, 1);
        assert_eq!(s.yields_taken, 0);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = std::sync::Arc::new(Counters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_threads_paused(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().threads_paused, 4000);
    }

    #[test]
    fn peak_is_a_high_water_mark_not_a_sum() {
        let c = Counters::new();
        c.record_peak_trace_bytes(100);
        c.record_peak_trace_bytes(40);
        assert_eq!(c.snapshot().peak_trace_bytes, 100);
        c.record_peak_trace_bytes(250);
        assert_eq!(c.snapshot().peak_trace_bytes, 250);
    }

    #[test]
    fn merge_sums_adds_and_maxes_peaks() {
        let a = Counters::new();
        a.add_events_streamed(5);
        a.record_peak_trace_bytes(300);
        let b = Counters::new();
        b.add_events_streamed(7);
        b.record_peak_trace_bytes(120);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.events_streamed, 12);
        assert_eq!(s.peak_trace_bytes, 300);
    }

    #[test]
    fn live_detector_counters_accumulate_and_merge() {
        let a = Counters::new();
        a.add_wfg_edges(3);
        a.add_wfg_cycles_detected(1);
        let b = Counters::new();
        b.add_wfg_edges(2);
        b.add_lock_timeouts(4);
        b.add_poisoned_recovered(1);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.wfg_edges, 5);
        assert_eq!(s.wfg_cycles_detected, 1);
        assert_eq!(s.lock_timeouts, 4);
        assert_eq!(s.poisoned_recovered, 1);
    }

    #[test]
    fn parallel_join_counters_accumulate_and_merge() {
        let a = Counters::new();
        a.add_join_tasks_executed(4);
        a.add_join_steal_waits(1);
        let b = Counters::new();
        b.add_join_tasks_executed(6);
        b.add_join_steal_waits(2);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.join_tasks_executed, 10);
        assert_eq!(s.join_steal_waits, 3);
    }

    #[test]
    fn spill_backpressure_waits_accumulate_and_merge() {
        let a = Counters::new();
        a.add_spill_backpressure_waits(2);
        let b = Counters::new();
        b.add_spill_backpressure_waits(3);
        a.merge(&b.snapshot());
        assert_eq!(a.snapshot().spill_backpressure_waits, 5);
    }

    #[test]
    fn precision_counters_accumulate_and_merge() {
        let a = Counters::new();
        a.add_cycles_pruned_infeasible(1);
        a.add_trials_saved(20);
        let b = Counters::new();
        b.add_cycles_pruned_infeasible(2);
        b.add_trials_saved(15);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.cycles_pruned_infeasible, 3);
        assert_eq!(s.trials_saved, 35);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let c = Counters::new();
        c.add_cycles_found(7);
        let s = c.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
