//! Model of **jspider** — "a highly configurable and customizable Web
//! Spider engine" (paper §5.1; 10,252 LoC, 0 deadlock cycles).
//!
//! jSpider coordinates fetch workers through a scheduler monitor and
//! per-site rule sets; the scheduler lock is always taken before the rule
//! lock. The model: a dispatcher feeding a queue and workers draining it,
//! all under the consistent `scheduler → rules` order.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Fetch worker threads.
pub const WORKERS: usize = 2;
/// URLs seeded by the dispatcher.
pub const URLS: usize = 6;

/// Builds the jspider model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("jspider", |ctx: &TCtx| {
        let scheduler = ctx.new_lock(label("SchedulerImpl.<init>:31"));
        let rules = ctx.new_lock(label("RuleSet.<init>:19"));
        let queue = Shared::new(Vec::<usize>::new());
        let fetched = Shared::new(0usize);

        let dispatcher = {
            let queue = queue.clone();
            ctx.spawn(
                label("SpiderImpl.startDispatcher:77"),
                "dispatcher",
                move |ctx| {
                    for u in 0..URLS {
                        let g = ctx.lock(&scheduler, label("SchedulerImpl.schedule:58"));
                        // Rule evaluation nested under the scheduler lock.
                        let gr = ctx.lock(&rules, label("RuleSet.applyRules:41"));
                        queue.with(|q| q.push(u));
                        drop(gr);
                        drop(g);
                        ctx.yield_now();
                    }
                },
            )
        };
        let mut workers = Vec::new();
        for w in 0..WORKERS {
            let queue = queue.clone();
            let fetched = fetched.clone();
            workers.push(ctx.spawn(
                label("WorkerThreadPool.newThread:104"),
                &format!("fetch-{w}"),
                move |ctx| {
                    loop {
                        let g =
                            ctx.lock(&scheduler, label("SchedulerImpl.getScheduledSpiderTask:71"));
                        let item = queue.with(|q| q.pop());
                        drop(g);
                        match item {
                            Some(_) => {
                                ctx.work(1); // fetch
                                let gr = ctx.lock(&rules, label("RuleSet.recordVisit:52"));
                                fetched.with(|f| *f += 1);
                                drop(gr);
                            }
                            None => {
                                let done = fetched.with(|f| *f >= URLS);
                                if done {
                                    break;
                                }
                                ctx.yield_now();
                            }
                        }
                    }
                },
            ));
        }
        ctx.join(&dispatcher, label("SpiderImpl.main: join"));
        for wk in &workers {
            ctx.join(wk, label("SpiderImpl.main: join"));
        }
        assert_eq!(fetched.get(), URLS);
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "jspider",
        paper_loc: 10_252,
        expected_cycles: Some(0),
        expected_real: Some(0),
        paper_row: crate::suite::PaperRow {
            cycles: "0",
            real: "0",
            reproduced: "-",
            probability: "-",
            thrashes: "-",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn scheduler_rules_order_has_no_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 0);
    }

    #[test]
    fn workers_drain_the_whole_queue_under_many_seeds() {
        for seed in [1, 9, 23] {
            let fuzzer =
                DeadlockFuzzer::from_ref(program(), Config::default().with_phase1_seed(seed));
            let p1 = fuzzer.phase1();
            assert!(
                p1.run_outcome.is_completed(),
                "seed {seed}: {:?}",
                p1.run_outcome
            );
        }
    }
}
