//! Model of **DBCP** — the Apache Commons Database Connection Pool
//! (paper §5.1/§5.3; 27,194 LoC, 2 cycles, both real, probability 1.00,
//! 0 thrashes).
//!
//! The published deadlock: one thread prepares a statement — holding the
//! `Connection` monitor (`DelegatingConnection.java:185`) it enters the
//! `KeyedObjectPool` (`PoolingConnection.java:87`) — while another thread
//! closes a statement — holding the pool (`PoolablePreparedStatement.
//! java:78`) it re-enters the connection (`PoolablePreparedStatement.
//! java:106`). A second cycle exists between the same two monitors on the
//! `createStatement`/`returnObject` paths.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Gap between the two client phases.
pub const GAP: u32 = 18;

/// Builds the DBCP model: one shared statement pool, two pooled
/// connections, and the two published deadlock patterns — the
/// `prepareStatement`/`close` pair on connection 1 and the
/// `createStatement`/`returnObject` pair on connection 2. Both sides of
/// each pair carry their own program context, so the active scheduler can
/// pause both parties and each cycle reproduces deterministically.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("dbcp", |ctx: &TCtx| {
        let conn1 = ctx.new_lock(label("PoolableConnectionFactory.makeObject:291"));
        let conn2 = ctx.new_lock(label("PoolableConnectionFactory.makeObject:291"));
        let pool = ctx.new_lock(label("GenericKeyedObjectPool.<init>:190"));

        // Thread 1: prepares statements (connection → pool) on each
        // connection, through two different library paths.
        let preparer = ctx.spawn(label("DbcpTest.startPreparer:12"), "preparer", move |ctx| {
            let gc = ctx.lock(&conn1, label("DelegatingConnection.prepareStatement:185"));
            let gp = ctx.lock(&pool, label("PoolingConnection.borrowObject:87"));
            ctx.work(1);
            drop(gp);
            drop(gc);
            ctx.work(GAP);
            let gc = ctx.lock(&conn2, label("DelegatingConnection.createStatement:169"));
            let gp = ctx.lock(&pool, label("PoolingConnection.makeObject:119"));
            ctx.work(1);
            drop(gp);
            drop(gc);
        });

        // Thread 2: closes statements (pool → connection), one per
        // connection, through the matching library paths.
        let closer = ctx.spawn(label("DbcpTest.startCloser:19"), "closer", move |ctx| {
            ctx.work(GAP); // offset against the preparer's phases
            let gp = ctx.lock(&pool, label("PoolablePreparedStatement.close:78"));
            let gc = ctx.lock(&conn1, label("PoolablePreparedStatement.passivate:106"));
            ctx.work(1);
            drop(gc);
            drop(gp);
            ctx.work(GAP);
            let gp = ctx.lock(&pool, label("GenericKeyedObjectPool.returnObject:1210"));
            let gc = ctx.lock(&conn2, label("DelegatingStatement.close:142"));
            ctx.work(1);
            drop(gc);
            drop(gp);
        });

        ctx.join(&preparer, label("DbcpTest.main: join"));
        ctx.join(&closer, label("DbcpTest.main: join"));
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "DBCP",
        paper_loc: 27_194,
        expected_cycles: Some(2),
        expected_real: Some(2),
        paper_row: crate::suite::PaperRow {
            cycles: "2",
            real: "2",
            reproduced: "2",
            probability: "1.00",
            thrashes: "0.00",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_the_connection_pool_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        // 2 preparer contexts × 1 closer context on the same lock pair.
        assert_eq!(p1.cycle_count(), 2);
        let text: String = p1.abstract_cycles.iter().map(|c| c.to_string()).collect();
        assert!(text.contains("DelegatingConnection.prepareStatement:185"));
        assert!(text.contains("PoolablePreparedStatement.close:78"));
    }

    #[test]
    fn cycles_reproduced_with_high_probability() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(8));
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 2);
        assert_eq!(report.confirmed_count(), 2);
        let avg: f64 = report
            .confirmations
            .iter()
            .map(|c| c.probability.matched as f64 / c.probability.trials as f64)
            .sum::<f64>()
            / report.confirmations.len() as f64;
        assert!(avg > 0.85, "DBCP reproduces almost always: {avg}");
    }
}
