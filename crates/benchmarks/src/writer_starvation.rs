//! A writer-starvation ring: `n` shard scanners each take a *read*
//! hold on their own shard, then want a *write* on the next — a
//! deadlock ring closed entirely through shared holds.
//!
//! This is the mirror image of [`crate::read_mostly_cache`]: there the
//! shared modes dissolve the apparent cycle; here they do not, because
//! every wait in the ring is exclusive and an exclusive wait conflicts
//! with a shared hold. iGoodlock must keep the cycle (read–read pruning
//! must not over-prune), report the holds as reads, and Phase II must
//! line up all `n` scanners to confirm it.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// The ring with `n` shards (`n >= 2`). Scanner `i` read-locks shard
/// `i`, then write-locks shard `i + 1` to promote hot entries — twice,
/// with seat-staggered pauses so the ring deadlock is rare under plain
/// random scheduling (Phase I usually records the full relation) while
/// the biased Phase II scheduler can still close it.
pub fn program(n: usize) -> ProgramRef {
    assert!(n >= 2, "a deadlock ring needs at least two shards");
    Arc::new(Named::new("writer-starvation", move |ctx: &TCtx| {
        let shards: Vec<_> = (0..n)
            .map(|_| ctx.new_lock(label("Store.addShard: rwlock")))
            .collect();
        let mut scanners = Vec::new();
        for s in 0..n {
            let own = shards[s];
            let next = shards[(s + 1) % n];
            scanners.push(ctx.spawn(
                label("Store.startScanner"),
                &format!("scanner-{s}"),
                move |ctx| {
                    for round in 0..2u32 {
                        ctx.work(if round == 0 { 2 + s as u32 * 4 } else { 3 });
                        ctx.acquire_shared(&own, label("Scanner.scan: read"));
                        ctx.acquire(&next, label("Scanner.promote: write"));
                        ctx.work(1);
                        ctx.release(&next, label("Scanner.promote: unlock"));
                        ctx.release(&own, label("Scanner.scan: unlock"));
                    }
                },
            ));
        }
        for t in &scanners {
            ctx.join(t, label("Store.join"));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};
    use df_events::AcquireMode;

    #[test]
    fn phase1_keeps_the_ring_and_reports_the_holds_as_reads() {
        let fuzzer = DeadlockFuzzer::from_ref(program(3), Config::default());
        let p1 = fuzzer.phase1();
        let ring = p1
            .cycles
            .iter()
            .find(|c| c.len() == 3)
            .unwrap_or_else(|| panic!("no 3-ring among {p1}"));
        for c in ring.components() {
            assert_eq!(c.mode, AcquireMode::Exclusive, "every wait is a write");
            assert_eq!(
                c.hold_modes,
                vec![AcquireMode::Shared],
                "every hold is a read"
            );
        }
    }

    #[test]
    fn phase2_confirms_the_ring_through_shared_holds() {
        let fuzzer = DeadlockFuzzer::from_ref(program(3), Config::default().with_confirm_trials(5));
        let report = fuzzer.run();
        assert!(report.confirmed_count() >= 1, "{report}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_rings() {
        let _ = program(1);
    }
}
