//! Synthetic workload generator for scalability experiments.
//!
//! The paper's benchmarks total 600 KLoC of Java; our models reproduce
//! their *structure* but not their *bulk*. This generator produces
//! parameterized programs — `threads` workers, a pool of `locks`, a
//! stream of mostly-ordered nested acquisitions with a controlled number
//! of deliberate order inversions (`cycle_pairs`) — so Phase I and
//! Phase II cost can be measured as program size grows
//! (`cargo bench -p df-bench --bench scaling`).
//!
//! Generation is deterministic in `seed` (a small LCG — no external RNG
//! so the crate stays dependency-light and the generated *program text*
//! is a pure function of the spec).

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

/// Parameters of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Worker threads.
    pub threads: usize,
    /// Lock pool size.
    pub locks: usize,
    /// Nested acquisition pairs per worker.
    pub ops_per_thread: usize,
    /// Deliberate lock-order inversions (each contributes one potential
    /// 2-cycle between consecutive workers).
    pub cycle_pairs: usize,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A small deadlock-free workload.
    pub fn small() -> Self {
        SyntheticSpec {
            threads: 4,
            locks: 8,
            ops_per_thread: 6,
            cycle_pairs: 0,
            seed: 1,
        }
    }

    /// A medium workload with a couple of seeded cycles.
    pub fn medium() -> Self {
        SyntheticSpec {
            threads: 8,
            locks: 16,
            ops_per_thread: 12,
            cycle_pairs: 2,
            seed: 2,
        }
    }

    /// A large workload (hundreds of acquisitions per run).
    pub fn large() -> Self {
        SyntheticSpec {
            threads: 16,
            locks: 32,
            ops_per_thread: 24,
            cycle_pairs: 4,
            seed: 3,
        }
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Builds a synthetic program from `spec`.
///
/// Ordinary operations acquire `(lo, hi)` in ascending lock order (never
/// a cycle); workers `2i` and `2i+1` of the first `cycle_pairs` pairs
/// additionally acquire one dedicated lock pair in opposite orders, at
/// pair-specific sites, with the even worker delayed — Figure 1's shape,
/// repeated.
pub fn program(spec: SyntheticSpec) -> ProgramRef {
    Arc::new(Named::new("synthetic", move |ctx: &TCtx| {
        let pool: Vec<_> = (0..spec.locks)
            .map(|_| ctx.new_lock(Label::new("Synth.newLock")))
            .collect();
        let pairs: Vec<_> = (0..spec.cycle_pairs)
            .map(|_| {
                (
                    ctx.new_lock(Label::new("Synth.newCycleLockA")),
                    ctx.new_lock(Label::new("Synth.newCycleLockB")),
                )
            })
            .collect();
        let mut workers = Vec::new();
        for t in 0..spec.threads {
            let pool = pool.clone();
            let pairs = pairs.clone();
            workers.push(ctx.spawn(
                Label::new("Synth.spawnWorker"),
                &format!("synth-{t}"),
                move |ctx| {
                    let mut rng = spec.seed ^ (t as u64).wrapping_mul(0x9E37_79B9);
                    // Deliberate inversion first (if this worker belongs
                    // to a cycle pair).
                    if t / 2 < pairs.len() {
                        let (a, b) = pairs[t / 2];
                        let (first, second, slow) = if t % 2 == 0 {
                            (a, b, true)
                        } else {
                            (b, a, false)
                        };
                        if slow {
                            ctx.work(10);
                        }
                        let g1 =
                            ctx.lock(&first, Label::new(&format!("Synth.pair{}.first", t / 2)));
                        let g2 =
                            ctx.lock(&second, Label::new(&format!("Synth.pair{}.second", t / 2)));
                        drop(g2);
                        drop(g1);
                        ctx.work(3);
                    }
                    // Ordered bulk work: never cyclic.
                    for op in 0..spec.ops_per_thread {
                        let x = (lcg(&mut rng) as usize) % pool.len();
                        let y = (lcg(&mut rng) as usize) % pool.len();
                        if x == y {
                            ctx.yield_now();
                            continue;
                        }
                        let (lo, hi) = (x.min(y), x.max(y));
                        let g1 = ctx.lock(&pool[lo], Label::new(&format!("Synth.bulk{op}.outer")));
                        let g2 = ctx.lock(&pool[hi], Label::new(&format!("Synth.bulk{op}.inner")));
                        drop(g2);
                        drop(g1);
                        if op % 4 == 0 {
                            ctx.work(1);
                        }
                    }
                },
            ));
        }
        for w in &workers {
            ctx.join(w, Label::new("Synth.join"));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn deadlock_free_spec_reports_nothing() {
        let fuzzer = DeadlockFuzzer::from_ref(program(SyntheticSpec::small()), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 0);
        assert!(p1.acquires_observed > 10, "bulk work happened");
    }

    #[test]
    fn seeded_cycles_are_found_and_confirmed() {
        let spec = SyntheticSpec::medium();
        let fuzzer =
            DeadlockFuzzer::from_ref(program(spec), Config::default().with_confirm_trials(4));
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(
            p1.cycle_count(),
            spec.cycle_pairs,
            "one 2-cycle per seeded pair"
        );
        let report = fuzzer.run();
        assert_eq!(report.confirmed_count(), spec.cycle_pairs);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::medium();
        let a = DeadlockFuzzer::from_ref(program(spec), Config::default()).phase1();
        let b = DeadlockFuzzer::from_ref(program(spec), Config::default()).phase1();
        assert_eq!(a.relation_size, b.relation_size);
        assert_eq!(a.cycle_count(), b.cycle_count());
    }

    #[test]
    fn large_spec_completes_within_budget() {
        let fuzzer = DeadlockFuzzer::from_ref(program(SyntheticSpec::large()), Config::default());
        let p1 = fuzzer.phase1();
        assert!(
            p1.run_outcome.is_completed() || p1.run_outcome.is_deadlock(),
            "{:?}",
            p1.run_outcome
        );
        assert!(p1.acquires_observed > 100);
    }
}
