//! Model of **Synchronized Maps** (paper §5.1/§5.3; 18,911 LoC;
//! 4 cycles each for `HashMap`, `TreeMap`, `WeakHashMap`,
//! `LinkedHashMap`, `IdentityHashMap`; all real; probability 0.52;
//! 0.04 thrashes).
//!
//! `m1.equals(m2)` on synchronized maps locks `m1` and then, while
//! comparing, calls into `m2` (`get`, `size`) which locks `m2`. Two
//! threads running `m1.equals(m2)` and `m2.equals(m1)` can deadlock at
//! any of the 2 × 2 inner-call combinations — 4 cycles per map class.
//!
//! The paper observed probability ≈ 0.5 here because the *two inner
//! acquires are adjacent*: while steering toward one combination the
//! threads frequently close one of the *other* combinations first — a
//! real deadlock, but not the requested cycle. The model reproduces that
//! mechanism exactly.
//!
//! One of the four combinations per class — `(size, size)` — is predicted
//! by iGoodlock but *unrealizable*: for both threads to pass their `get`
//! calls each would have to observe the other's receiver unlocked before
//! the other's `equals` begins, an ordering contradiction. DeadlockFuzzer
//! correctly never confirms it (the paper's §5.4 point: unconfirmed
//! cycles cannot be dismissed, but confirmed ones are never false).

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{LockRef, TCtx};

/// The five synchronized map classes of Table 1.
pub const CLASSES: [&str; 5] = [
    "HashMap",
    "TreeMap",
    "WeakHashMap",
    "LinkedHashMap",
    "IdentityHashMap",
];
/// Setup work of worker B before its `equals` call.
pub const SETUP: u32 = 22;

/// `self.equals(other)`: lock the receiver, then call `other.get(...)`
/// and `other.size()` — two separate inner acquires of the argument's
/// monitor.
fn equals(ctx: &TCtx, class: &str, recv: LockRef, arg: LockRef) {
    let outer = Label::new(&format!("Synchronized{class}.equals: lock self"));
    let via_get = Label::new(&format!("Synchronized{class}.get: lock argument"));
    let via_size = Label::new(&format!("Synchronized{class}.size: lock argument"));
    let g1 = ctx.lock(&recv, outer);
    let g2 = ctx.lock(&arg, via_get);
    drop(g2);
    let g2 = ctx.lock(&arg, via_size);
    drop(g2);
    drop(g1);
}

/// Builds the synchronized-maps model: one class tested at a time (like
/// the paper's harness), each with a fresh map pair. One worker calls
/// `m1.equals(m2)` right away, the other calls `m2.equals(m1)` after a
/// long setup — and *which* worker is the delayed one alternates from run
/// to run, modeling the arrival-order randomness real OS scheduling gives
/// the paper's harness. The alternation is derived from
/// [`TCtx::run_seed`] (trial seeds are consecutive, so it flips every
/// trial), never from ambient state: a (program, seed) pair must replay
/// identically or parallel campaigns would depend on trial execution
/// order. (The delay length is invisible to the abstractions, so Phase I
/// cycles stay valid across runs either way.)
pub fn program() -> ProgramRef {
    Arc::new(Named::new("synchronized-maps", |ctx: &TCtx| {
        let delay_a = ctx.run_seed() % 2 == 1;
        for class in CLASSES {
            let m1 = ctx.new_lock(Label::new(&format!(
                "Collections.synchronizedMap({class}) #1"
            )));
            let m2 = ctx.new_lock(Label::new(&format!(
                "Collections.synchronizedMap({class}) #2"
            )));
            let ta = ctx.spawn(
                Label::new(&format!("MapTest.start{class}A")),
                &format!("{class}-A"),
                move |ctx| {
                    if delay_a {
                        ctx.work(SETUP); // populate the maps first
                    }
                    equals(ctx, class, m1, m2);
                },
            );
            let tb = ctx.spawn(
                Label::new(&format!("MapTest.start{class}B")),
                &format!("{class}-B"),
                move |ctx| {
                    if !delay_a {
                        ctx.work(SETUP);
                    }
                    equals(ctx, class, m2, m1);
                },
            );
            ctx.join(&ta, Label::new("MapTest.main: join"));
            ctx.join(&tb, Label::new("MapTest.main: join"));
        }
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "Synchronized Maps",
        paper_loc: 18_911,
        expected_cycles: Some(20),
        expected_real: Some(20),
        paper_row: crate::suite::PaperRow {
            cycles: "4+4+4+4+4",
            real: "4+4+4+4+4",
            reproduced: "4+4+4+4+4",
            probability: "0.52",
            thrashes: "0.04",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_four_cycles_per_class() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(
            p1.run_outcome.is_completed(),
            "phase 1 outcome: {:?}",
            p1.run_outcome
        );
        assert_eq!(p1.cycle_count(), 20, "4 per class, 5 classes");
        for class in CLASSES {
            let n = p1
                .abstract_cycles
                .iter()
                .filter(|c| c.to_string().contains(&format!("Synchronized{class}.")))
                .count();
            assert_eq!(n, 4, "class {class}");
        }
    }

    #[test]
    fn deadlocks_always_but_target_matching_is_partial() {
        // The paper's signature result on maps: DeadlockFuzzer virtually
        // always creates *a* deadlock, but often a different combination
        // than the one requested — probability of reproducing the exact
        // cycle ≈ 0.5.
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        let trials = 4;
        let mut any = 0u32;
        let mut matched = 0u32;
        let mut total = 0u32;
        // Cover all four combinations of the first two classes (the
        // combination mix is what produces the partial matching).
        for cycle in p1.abstract_cycles.iter().take(8) {
            let prob = fuzzer
                .estimate_probability(cycle, trials)
                .expect("trials > 0");
            any += prob.deadlocks;
            matched += prob.matched;
            total += trials;
        }
        assert_eq!(any, total, "every biased run deadlocks somewhere");
        let ratio = f64::from(matched) / f64::from(any);
        assert!(
            (0.2..0.95).contains(&ratio),
            "some, but not all, trials match the exact target: {matched}/{any}"
        );
    }
}
