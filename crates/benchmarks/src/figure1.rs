//! Figure 1 of the paper: the running example.
//!
//! `MyThread.run` optionally executes four long-running methods, then
//! acquires its two locks in order. `main` creates two (or three) locks
//! and starts two (or three) `MyThread` instances with crossed lock
//! orders. The deadlock between the first two threads is *rare* under
//! plain testing because the first thread's long prefix delays its
//! acquisitions.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{LockRef, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// How much simulated work the `flag = true` thread performs before taking
/// its locks (the paper's `f1()..f4()`).
pub const LONG_PREFIX: u32 = 8;

/// The `MyThread.run` body of Figure 1 (lines 8–19).
fn my_thread_run(ctx: &TCtx, l1: LockRef, l2: LockRef, flag: bool) {
    if flag {
        // f1() .. f4(): long running methods (lines 10-13).
        ctx.work(LONG_PREFIX);
    }
    ctx.acquire(&l1, label("MyThread.run:15"));
    ctx.acquire(&l2, label("MyThread.run:16"));
    ctx.release(&l2, label("MyThread.run:17"));
    ctx.release(&l1, label("MyThread.run:18"));
}

/// The program of Figure 1. With `third_thread = true`, lines 24 and 27
/// are "uncommented": a third lock `o3` and a third `MyThread(o2, o3,
/// false)` are created — the §3 example showing why thread/lock
/// abstractions matter (without them, DeadlockFuzzer pauses the wrong
/// thread at line 16 and misses the deadlock with probability ≈ 0.25).
pub fn program(third_thread: bool) -> ProgramRef {
    let name = if third_thread {
        "figure1-three-threads"
    } else {
        "figure1"
    };
    Arc::new(Named::new(name, move |ctx: &TCtx| {
        let o1 = ctx.new_lock(label("MyThread.main:22"));
        let o2 = ctx.new_lock(label("MyThread.main:23"));
        let o3 = third_thread.then(|| ctx.new_lock(label("MyThread.main:24")));
        let t1 = ctx.spawn(label("MyThread.main:25"), "t1", move |ctx| {
            my_thread_run(ctx, o1, o2, true)
        });
        let t2 = ctx.spawn(label("MyThread.main:26"), "t2", move |ctx| {
            my_thread_run(ctx, o2, o1, false)
        });
        let t3 = o3.map(|o3| {
            ctx.spawn(label("MyThread.main:27"), "t3", move |ctx| {
                my_thread_run(ctx, o2, o3, false)
            })
        });
        ctx.join(&t1, label("MyThread.main:join"));
        ctx.join(&t2, label("MyThread.main:join"));
        if let Some(t3) = t3 {
            ctx.join(&t3, label("MyThread.main:join"));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::abstraction::AbstractionMode;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_exactly_one_cycle() {
        let fuzzer = DeadlockFuzzer::from_ref(program(false), Config::default());
        let p1 = fuzzer.phase1();
        assert_eq!(p1.cycle_count(), 1);
        assert_eq!(p1.cycles[0].len(), 2);
        // The cycle's context names lines 15 and 16 of Figure 1.
        let text = p1.abstract_cycles[0].to_string();
        assert!(text.contains("MyThread.run:15"));
        assert!(text.contains("MyThread.run:16"));
    }

    #[test]
    fn deadlock_reproduced_with_probability_one() {
        let fuzzer =
            DeadlockFuzzer::from_ref(program(false), Config::default().with_confirm_trials(10));
        let report = fuzzer.run();
        assert_eq!(report.confirmed_count(), 1);
        assert_eq!(report.confirmations[0].probability.matched, 10);
    }

    #[test]
    fn section3_trivial_abstraction_reduces_probability_or_thrashes() {
        // §3: on the 3-thread variant, trivial abstraction pauses the
        // wrong thread and either thrashes or misses.
        let exact =
            DeadlockFuzzer::from_ref(program(true), Config::default().with_confirm_trials(15));
        let exact_report = exact.run();
        assert_eq!(exact_report.potential_count(), 1);
        let exact_prob = &exact_report.confirmations[0].probability;
        assert_eq!(exact_prob.deadlocks, 15, "exact abstraction: P = 1");
        assert_eq!(exact_prob.avg_thrashes, 0.0);

        let trivial = DeadlockFuzzer::from_ref(
            program(true),
            Config::default()
                .with_mode(AbstractionMode::Trivial)
                .with_confirm_trials(15),
        );
        let trivial_report = trivial.run();
        let trivial_prob = &trivial_report.confirmations[0].probability;
        assert!(
            trivial_prob.avg_thrashes > 0.0 || trivial_prob.deadlocks < 15,
            "trivial abstraction must hurt: {trivial_prob:?}"
        );
    }
}
