//! Dining philosophers: a deadlock cycle of length N.
//!
//! Every real deadlock in the paper's benchmarks has length two; this
//! program exercises the machinery on a longer ring. `n` philosophers
//! each take their left fork then their right, so the only deadlock is
//! the full n-cycle — iGoodlock must iterate its join to level n, and
//! Phase II must park n − 1 threads before `checkRealDeadlock` fires.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// The dining-philosophers program with `n` seats (`n >= 2`). Each
/// philosopher thinks, takes the left fork, takes the right fork, eats,
/// and puts both back — twice. Think times are staggered per seat so the
/// ring deadlock is *rare* under plain random scheduling (the recording
/// run usually completes and the dependency ring is observed in full),
/// while the biased Phase II scheduler can still line all `n` threads up.
pub fn program(n: usize) -> ProgramRef {
    assert!(n >= 2, "a deadlock ring needs at least two philosophers");
    Arc::new(Named::new("dining-philosophers", move |ctx: &TCtx| {
        let forks: Vec<_> = (0..n)
            .map(|_| ctx.new_lock(label("Table.layFork")))
            .collect();
        let mut seats = Vec::new();
        for p in 0..n {
            let left = forks[p];
            let right = forks[(p + 1) % n];
            seats.push(ctx.spawn(
                label("Table.seatPhilosopher"),
                &format!("philosopher-{p}"),
                move |ctx| {
                    for round in 0..2u32 {
                        // Think: seat-staggered on the first round.
                        ctx.work(if round == 0 { 2 + p as u32 * 4 } else { 3 });
                        let l = ctx.lock(&left, label("Philosopher.takeLeft"));
                        let r = ctx.lock(&right, label("Philosopher.takeRight"));
                        ctx.work(1); // eat
                        drop(r);
                        drop(l);
                    }
                },
            ));
        }
        for s in &seats {
            ctx.join(s, label("Table.join"));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_predicts_the_full_ring() {
        let fuzzer = DeadlockFuzzer::from_ref(program(3), Config::default());
        let p1 = fuzzer.phase1();
        assert!(
            p1.cycles.iter().any(|c| c.len() == 3),
            "lengths: {:?}",
            p1.cycles.iter().map(|c| c.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn phase2_confirms_the_ring() {
        let fuzzer = DeadlockFuzzer::from_ref(program(3), Config::default().with_confirm_trials(5));
        let report = fuzzer.run();
        assert!(report.confirmed_count() >= 1, "{report}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_tables() {
        let _ = program(1);
    }
}
