//! Models of the DeadlockFuzzer evaluation benchmarks (paper §5.1,
//! Table 1).
//!
//! The paper evaluates on ten Java programs and libraries. We cannot run
//! Java; instead each benchmark here is a **model**: a virtual-thread
//! program (written against [`df_runtime::TCtx`]) that reproduces the
//! original's *locking structure* — the same lock-order cycles at the same
//! kind of program contexts, the same scheduling hazards (long-running
//! prefixes that hide deadlocks from stress testing, heavy lock churn,
//! happens-before-guarded false positives) and the published potential
//! deadlock-cycle counts.
//!
//! | model | original | expected iGoodlock cycles |
//! |---|---|---|
//! | [`cache4j`] | cache4j object cache | 0 |
//! | [`sor`] | ETH successive over-relaxation | 0 |
//! | [`hedc`] | ETH web crawler | 0 |
//! | [`jspider`] | jSpider web spider | 0 |
//! | [`jigsaw`] | W3C Jigsaw web server | > real (contains false positives) |
//! | [`logging`] | `java.util.logging` | 3 |
//! | [`swing`] | `javax.swing` caret deadlock | 1 |
//! | [`dbcp`] | Apache Commons DBCP | 2 |
//! | [`lists`] | synchronized Lists (3 classes) | 9 + 9 + 9 |
//! | [`maps`] | synchronized Maps (5 classes) | 4 × 5 |
//!
//! Two pedagogical programs from the paper's exposition are also here:
//! [`figure1`] (the running example, §3) and [`section4`] (the yield
//! optimization example). Three models exercise the mode-aware
//! synchronization vocabulary beyond the paper's plain monitors:
//! [`producer_consumer`] (a condvar handshake with a lock inversion
//! threaded through it), [`read_mostly_cache`] (an rwlock inversion
//! whose cache side is shared on both paths — zero cycles, but only
//! for a mode-aware join) and [`writer_starvation`] (a deadlock ring
//! closed entirely through shared holds).
//!
//! # Example
//!
//! ```
//! use deadlock_fuzzer::{Config, DeadlockFuzzer};
//!
//! let bench = df_benchmarks::logging::benchmark();
//! let fuzzer = DeadlockFuzzer::from_ref(bench.program, Config::default());
//! let phase1 = fuzzer.phase1();
//! assert_eq!(phase1.cycle_count(), 3);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod account;
pub mod buffer;
pub mod cache4j;
pub mod dbcp;
pub mod dining_philosophers;
pub mod figure1;
pub mod hedc;
pub mod jigsaw;
pub mod jspider;
pub mod lists;
pub mod logging;
pub mod maps;
pub mod producer_consumer;
pub mod read_mostly_cache;
pub mod section4;
pub mod sor;
pub mod suite;
pub mod swing;
pub mod synthetic;
pub mod writer_starvation;

pub use suite::{table1_suite, Benchmark};
