//! Model of **Java Logging** (`java.util.logging`; paper §5.1; 4,248 LoC,
//! 3 cycles, all real, reproduced with probability 1.00 and 0 thrashes).
//!
//! The real library deadlocks between the global `LogManager` monitor and
//! individual `Logger` monitors: `readConfiguration()` holds the manager
//! lock and resets loggers (manager → logger), while API methods like
//! `Logger.addHandler`/`removeHandler`/`setLevel` hold the logger lock and
//! call back into the manager (logger → manager).
//!
//! The model has one manager lock and three logger locks; the config
//! thread performs three `readConfiguration()` rounds (round *i* resets
//! logger *i*), and the app thread performs the three API calls — one per
//! logger, each at its own call site. That yields exactly **3** potential
//! cycles, each `(manager → logger_i)` × `(logger_i → manager)`.
//!
//! The app thread calls `getLogger()` (a short manager-lock section)
//! before every API call — the §4 leading-lock pattern that makes the
//! yield optimization matter on this benchmark.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{LockRef, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Simulated computation between phases (large gaps keep unrelated phases
/// from overlapping spontaneously; the active scheduler's pauses bridge
/// them when orchestrating a cycle).
pub const GAP: u32 = 20;

fn get_logger(ctx: &TCtx, manager: &LockRef) {
    let g = ctx.lock(manager, label("LogManager.getLogger:280"));
    ctx.work(1);
    drop(g);
}

/// Builds the logging model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("logging", |ctx: &TCtx| {
        let manager = ctx.new_lock(label("LogManager.<clinit>:155"));
        let loggers: Vec<LockRef> = (0..3)
            .map(|_| ctx.new_lock(label("LogManager.demandLogger:390")))
            .collect();

        let cfg_loggers = loggers.clone();
        let config = ctx.spawn(label("LogTest.startConfig:18"), "config", move |ctx| {
            // Offset against the app thread's phases so unrelated rounds
            // do not collide spontaneously (reload happens between
            // requests in the real server).
            ctx.work(GAP / 2);
            for logger in &cfg_loggers {
                // readConfiguration(): manager → logger_i.
                let gm = ctx.lock(&manager, label("LogManager.readConfiguration:1150"));
                let gl = ctx.lock(logger, label("LogManager.resetLogger:1211"));
                ctx.work(1);
                drop(gl);
                drop(gm);
                ctx.work(GAP);
            }
        });

        let app_loggers = loggers.clone();
        let app = ctx.spawn(label("LogTest.startApp:25"), "app", move |ctx| {
            // addHandler: logger_0 → manager.
            get_logger(ctx, &manager);
            let gl = ctx.lock(&app_loggers[0], label("Logger.addHandler:1312"));
            let gm = ctx.lock(&manager, label("LogManager.checkAccess:1320"));
            drop(gm);
            drop(gl);
            ctx.work(GAP);
            // removeHandler: logger_1 → manager.
            get_logger(ctx, &manager);
            let gl = ctx.lock(&app_loggers[1], label("Logger.removeHandler:1340"));
            let gm = ctx.lock(&manager, label("LogManager.checkAccess:1348"));
            drop(gm);
            drop(gl);
            ctx.work(GAP);
            // setLevel: logger_2 → manager.
            get_logger(ctx, &manager);
            let gl = ctx.lock(&app_loggers[2], label("Logger.setLevel:1370"));
            let gm = ctx.lock(&manager, label("LogManager.checkAccess:1378"));
            drop(gm);
            drop(gl);
        });

        ctx.join(&config, label("LogTest.main: join"));
        ctx.join(&app, label("LogTest.main: join"));
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "Java Logging",
        paper_loc: 4_248,
        expected_cycles: Some(3),
        expected_real: Some(3),
        paper_row: crate::suite::PaperRow {
            cycles: "3",
            real: "3",
            reproduced: "3",
            probability: "1.00",
            thrashes: "0.00",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_three_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 3);
        assert!(p1.cycles.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn all_three_cycles_reproduced_with_probability_one() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(8));
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 3);
        assert_eq!(report.confirmed_count(), 3);
        for conf in &report.confirmations {
            assert_eq!(
                conf.probability.matched, 8,
                "cycle {} must match every trial: {:?}",
                conf.cycle_index, conf.probability
            );
            assert!(
                conf.probability.avg_thrashes < 0.5,
                "logging reproduces without thrashing: {:?}",
                conf.probability
            );
        }
    }
}
