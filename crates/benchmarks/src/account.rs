//! A bank account with a data race — the demo workload for the
//! RaceFuzzer sibling checker (`df_fuzzer::race`).
//!
//! The audited path takes the account lock; a "fast deposit" path forgot
//! it. The lockset analysis predicts the read/write conflict, and the
//! active race scheduler confirms it by pausing one access until the
//! other arrives. The account also has *no* lock-order cycles, so the
//! deadlock checker stays silent — each checker of the framework sees
//! only its own bug class.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Builds the racy-account program.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("racy-account", |ctx: &TCtx| {
        let balance = ctx.new_var(label("Account.balance"));
        let lock = ctx.new_lock(label("Account.lock"));
        let auditor = ctx.spawn(label("Bank.startAuditor"), "auditor", move |ctx| {
            ctx.work(2);
            let g = ctx.lock(&lock, label("Auditor.audit: lock"));
            ctx.read(&balance, label("Auditor.audit: read balance"));
            drop(g);
        });
        let depositor = ctx.spawn(label("Bank.startDepositor"), "depositor", move |ctx| {
            // BUG: the fast path skips the lock.
            ctx.read(&balance, label("Account.fastDeposit: read balance"));
            ctx.work(1);
            ctx.write(&balance, label("Account.fastDeposit: write balance"));
        });
        ctx.join(&auditor, label("Bank.join"));
        ctx.join(&depositor, label("Bank.join"));
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};
    use df_fuzzer::{predict_races, RaceStrategy, SimpleRandomChecker};
    use df_runtime::{RunConfig, VirtualRuntime};

    #[test]
    fn no_deadlocks_one_race() {
        // Deadlock checker: silent.
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        assert_eq!(fuzzer.phase1().cycle_count(), 0);
        // Race checker: one candidate, confirmed.
        let rt = VirtualRuntime::new(RunConfig::default());
        let p = program();
        let p2 = p.clone();
        let observed = rt.run(Box::new(SimpleRandomChecker::with_seed(1)), move |ctx| {
            p2.run(ctx)
        });
        let races = predict_races(&observed.trace);
        assert_eq!(races.len(), 1, "{races:?}");
        let (strategy, witness) = RaceStrategy::new(races[0].clone(), 0);
        let p3 = p.clone();
        let _ = rt.run(Box::new(strategy), move |ctx| p3.run(ctx));
        assert!(witness.lock().is_some(), "race confirmed");
    }
}
