//! Model of **Synchronized Lists** (paper §5.1/§5.3; 17,633 LoC;
//! 9 + 9 + 9 cycles across `ArrayList`, `Stack`, `LinkedList`; all real;
//! probability 0.99; ~0 thrashes).
//!
//! In `java.util.Collections.synchronizedList`, the bulk methods
//! `addAll(other)`, `removeAll(other)` and `retainAll(other)` lock the
//! receiver and then the argument. Two threads running `l1.m(l2)` and
//! `l2.m'(l1)` concurrently can deadlock for any of the 3 × 3 method
//! combinations — 9 cycles per list class.
//!
//! The harness (like the paper's "general test harnesses") exercises each
//! method combination as its own little two-thread test on a *fresh* pair
//! of lists: thread A runs some long setup first (so plain testing rarely
//! trips the deadlock), thread B calls its method right away. Each
//! combination therefore yields exactly one potential cycle, 27 in all,
//! and DeadlockFuzzer reproduces each nearly deterministically — the
//! paper's 0.99.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{LockRef, Shared, TCtx};

/// The three synchronized list classes of Table 1.
pub const CLASSES: [&str; 3] = ["ArrayList", "Stack", "LinkedList"];
/// The three bulk methods that lock both lists.
pub const METHODS: [&str; 3] = ["addAll", "removeAll", "retainAll"];
/// Setup work of thread A before its bulk call.
pub const SETUP: u32 = 22;

/// The sequential semantics of the three bulk methods.
fn apply(method: &str, recv: &mut Vec<i64>, arg: &[i64]) {
    match method {
        "addAll" => recv.extend_from_slice(arg),
        "removeAll" => recv.retain(|x| !arg.contains(x)),
        "retainAll" => recv.retain(|x| arg.contains(x)),
        other => unreachable!("unknown bulk method {other}"),
    }
}

/// `self.method(other)` on a synchronized list: receiver lock, then
/// argument lock, at the class+method's sites; the element copy happens
/// atomically under both locks, like the Java wrappers.
fn bulk_method(
    ctx: &TCtx,
    class: &str,
    method: &str,
    recv: (LockRef, &Shared<Vec<i64>>),
    arg: (LockRef, &Shared<Vec<i64>>),
) {
    let outer = Label::new(&format!("Synchronized{class}.{method}: lock self"));
    let inner = Label::new(&format!("Synchronized{class}.{method}: lock argument"));
    let g1 = ctx.lock(&recv.0, outer);
    let g2 = ctx.lock(&arg.0, inner);
    ctx.work(1); // copy elements
    let snapshot = arg.1.get();
    recv.1.with(|r| apply(method, r, &snapshot));
    drop(g2);
    drop(g1);
}

/// Builds the synchronized-lists model (all 3 × 3 × 3 combination tests
/// in one program, as one Table 1 row).
pub fn program() -> ProgramRef {
    Arc::new(Named::new("synchronized-lists", |ctx: &TCtx| {
        for class in CLASSES {
            for ma in METHODS {
                for mb in METHODS {
                    // A fresh pair of synchronized lists per combination.
                    let l1 = ctx.new_lock(Label::new(&format!("ListTest.newList({class}) #1")));
                    let l2 = ctx.new_lock(Label::new(&format!("ListTest.newList({class}) #2")));
                    let d1 = Shared::new(vec![1i64, 2, 3]);
                    let d2 = Shared::new(vec![3i64, 4]);
                    let (da, db) = (d1.clone(), d2.clone());
                    let ta = ctx.spawn(
                        Label::new(&format!("ListTest.startA({class})")),
                        &format!("{class}-{ma}-A"),
                        move |ctx| {
                            ctx.work(SETUP); // populate the lists first
                            bulk_method(ctx, class, ma, (l1, &da), (l2, &db));
                        },
                    );
                    let (da2, db2) = (d1.clone(), d2.clone());
                    let tb = ctx.spawn(
                        Label::new(&format!("ListTest.startB({class})")),
                        &format!("{class}-{mb}-B"),
                        move |ctx| {
                            bulk_method(ctx, class, mb, (l2, &db2), (l1, &da2));
                        },
                    );
                    ctx.join(&ta, Label::new("ListTest.main: join"));
                    ctx.join(&tb, Label::new("ListTest.main: join"));
                    // Linearizability of the completed pair: each bulk op
                    // is atomic under both locks, so the final state must
                    // equal *some* sequential order of the two calls.
                    let mut ab = (vec![1i64, 2, 3], vec![3i64, 4]);
                    let snap = ab.1.clone();
                    apply(ma, &mut ab.0, &snap);
                    let snap = ab.0.clone();
                    apply(mb, &mut ab.1, &snap);
                    let mut ba = (vec![1i64, 2, 3], vec![3i64, 4]);
                    let snap = ba.0.clone();
                    apply(mb, &mut ba.1, &snap);
                    let snap = ba.1.clone();
                    apply(ma, &mut ba.0, &snap);
                    let got = (d1.get(), d2.get());
                    assert!(
                        got == ab || got == ba,
                        "{class}.{ma}/{mb}: non-linearizable result {got:?} \
                         (expected {ab:?} or {ba:?})"
                    );
                }
            }
        }
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "Synchronized Lists",
        paper_loc: 17_633,
        expected_cycles: Some(27),
        expected_real: Some(27),
        paper_row: crate::suite::PaperRow {
            cycles: "9+9+9",
            real: "9+9+9",
            reproduced: "9+9+9",
            probability: "0.99",
            thrashes: "0.0",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_nine_cycles_per_class() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(
            p1.run_outcome.is_completed(),
            "phase 1 outcome: {:?}",
            p1.run_outcome
        );
        assert_eq!(p1.cycle_count(), 27, "9 per class, 3 classes");
        for class in CLASSES {
            let n = p1
                .abstract_cycles
                .iter()
                .filter(|c| c.to_string().contains(class))
                .count();
            assert_eq!(n, 9, "class {class}");
        }
    }

    #[test]
    fn sampled_cycles_reproduce_with_high_probability() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        // Confirming all 27 cycles is the bench harness's job; sample a
        // few spread across classes and methods.
        let mut matched = 0;
        let trials = 5;
        let sampled = 4;
        for cycle in p1
            .abstract_cycles
            .iter()
            .step_by(27 / sampled)
            .take(sampled)
        {
            let prob = fuzzer
                .estimate_probability(cycle, trials)
                .expect("trials > 0");
            matched += prob.matched;
        }
        assert!(
            matched as f64 >= 0.9 * (sampled as u32 * trials) as f64,
            "lists reproduce near-deterministically: {matched}/{}",
            sampled as u32 * trials
        );
    }
}
