//! A bounded buffer with monitor wait/notify — and a resource deadlock
//! hiding behind the condition-variable protocol.
//!
//! The paper's scope note ("We only consider resource deadlocks in this
//! paper") is exercised directly: the producer/consumer handshake can
//! stall only by lost signals (a communication deadlock, which the
//! runtime classifies but the fuzzer does not target), while the flush
//! and stats paths take the buffer monitor and the metrics lock in
//! opposite orders — a resource deadlock DeadlockFuzzer confirms.
//!
//! Interesting detail: the consumer's metrics acquisition happens both on
//! the plain path *and* after resuming from `wait()` — iGoodlock
//! distinguishes the two by context (the resumed hold carries the wait
//! site), so this model yields **two** cycles on one lock pair.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Buffer capacity.
pub const CAPACITY: usize = 2;
/// Items produced.
pub const ITEMS: usize = 4;

/// Builds the bounded-buffer model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("bounded-buffer", |ctx: &TCtx| {
        let monitor = ctx.new_lock(label("Buffer.<init>: monitor"));
        let metrics = ctx.new_lock(label("Metrics.<init>: lock"));
        let queue = Shared::new(Vec::<usize>::new());

        let qp = queue.clone();
        let producer = ctx.spawn(label("App.startProducer"), "producer", move |ctx| {
            for item in 0..ITEMS {
                ctx.acquire(&monitor, label("Buffer.put: lock"));
                while qp.with(|q| q.len() >= CAPACITY) {
                    ctx.wait(&monitor, label("Buffer.put: wait-for-space"));
                }
                qp.with(|q| q.push(item));
                ctx.notify_all(&monitor, label("Buffer.put: notify"));
                ctx.release(&monitor, label("Buffer.put: unlock"));
                ctx.work(1);
            }
        });

        let qc = queue.clone();
        let consumer = ctx.spawn(label("App.startConsumer"), "consumer", move |ctx| {
            for _ in 0..ITEMS {
                ctx.acquire(&monitor, label("Buffer.take: lock"));
                while qc.with(|q| q.is_empty()) {
                    ctx.wait(&monitor, label("Buffer.take: wait-for-item"));
                }
                qc.with(|q| {
                    q.remove(0);
                });
                // Record throughput: buffer monitor → metrics lock.
                ctx.acquire(&metrics, label("Metrics.record: lock"));
                ctx.release(&metrics, label("Metrics.record: unlock"));
                ctx.notify_all(&monitor, label("Buffer.take: notify"));
                ctx.release(&monitor, label("Buffer.take: unlock"));
                ctx.work(1);
            }
        });

        // Stats reporter: metrics lock → buffer monitor (opposite order!).
        let qs = queue.clone();
        let reporter = ctx.spawn(label("App.startReporter"), "reporter", move |ctx| {
            ctx.work(30); // report after the batch has mostly drained
            ctx.acquire(&metrics, label("Metrics.snapshot: lock"));
            ctx.acquire(&monitor, label("Buffer.size: lock"));
            let _depth = qs.with(|q| q.len());
            ctx.release(&monitor, label("Buffer.size: unlock"));
            ctx.release(&metrics, label("Metrics.snapshot: unlock"));
        });

        ctx.join(&producer, label("App.join"));
        ctx.join(&consumer, label("App.join"));
        ctx.join(&reporter, label("App.join"));
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn two_cycles_one_distinguished_by_wait_context() {
        // Whether one random execution exercises both the plain take path
        // and the resumed-from-wait take path depends on the Phase I
        // schedule; this seed is one that does.
        let config = Config::default().with_phase1_seed(2);
        let fuzzer = DeadlockFuzzer::from_ref(program(), config);
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 2, "plain take + resumed-from-wait take");
        let texts: Vec<String> = p1.abstract_cycles.iter().map(|c| c.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("Buffer.take: lock")),
            "{texts:?}"
        );
        assert!(
            texts
                .iter()
                .any(|t| t.contains("Buffer.take: wait-for-item")),
            "the resumed hold carries the wait site: {texts:?}"
        );
    }

    #[test]
    fn the_plain_cycle_confirms_reliably() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(10));
        let report = fuzzer.run();
        assert!(report.confirmed_count() >= 1);
        let best = report
            .confirmations
            .iter()
            .map(|c| c.probability.matched)
            .max()
            .unwrap();
        assert_eq!(best, 10, "the plain-path cycle is deterministic");
    }
}
