//! A producer/consumer pipeline over a condition variable — with a
//! flush path that closes a classic lock cycle around the handshake.
//!
//! The handshake itself is correct: the queue mutex plus the
//! `not_empty` condvar implement the standard predicate-loop protocol,
//! and [`TCtx::cond_wait`] keeps the dependency relation balanced
//! across the park (the resumed hold carries the wait site as its
//! context). The deadlock is a *resource* cycle threaded through it:
//! the consumer delivers downstream while still holding the queue
//! (queue → sink), and the producer's final flush inspects queue depth
//! while holding the sink (sink → queue).
//!
//! [`TCtx::cond_wait`]: df_runtime::TCtx::cond_wait

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Items pushed through the pipeline.
pub const ITEMS: usize = 3;

/// Builds the producer/consumer model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("producer-consumer", |ctx: &TCtx| {
        let queue = ctx.new_lock(label("Queue.<init>: lock"));
        let not_empty = ctx.new_condvar(label("Queue.<init>: notEmpty"));
        let sink = ctx.new_lock(label("Sink.<init>: lock"));
        let items = Shared::new(Vec::<usize>::new());

        let ip = items.clone();
        let producer = ctx.spawn(label("App.startProducer"), "producer", move |ctx| {
            for item in 0..ITEMS {
                ctx.acquire(&queue, label("Queue.push: lock"));
                ip.with(|q| q.push(item));
                ctx.cond_notify_one(&not_empty, label("Queue.push: notify"));
                ctx.release(&queue, label("Queue.push: unlock"));
                ctx.work(2);
            }
            // Final flush: sink → queue, the opposite nesting to the
            // consumer's delivery. The long tail-work makes the window
            // narrow, so plain random runs usually complete and Phase I
            // records the full relation.
            ctx.work(6);
            ctx.acquire(&sink, label("Sink.flush: lock"));
            ctx.acquire(&queue, label("Queue.depth: lock"));
            let _backlog = ip.with(|q| q.len());
            ctx.release(&queue, label("Queue.depth: unlock"));
            ctx.release(&sink, label("Sink.flush: unlock"));
        });

        let ic = items.clone();
        let consumer = ctx.spawn(label("App.startConsumer"), "consumer", move |ctx| {
            for _ in 0..ITEMS {
                ctx.acquire(&queue, label("Queue.pop: lock"));
                while ic.with(|q| q.is_empty()) {
                    ctx.cond_wait(&not_empty, &queue, label("Queue.pop: wait"));
                }
                let _item = ic.with(|q| q.remove(0));
                // Deliver downstream while still holding the queue:
                // queue → sink.
                ctx.acquire(&sink, label("Sink.deliver: lock"));
                ctx.work(1);
                ctx.release(&sink, label("Sink.deliver: unlock"));
                ctx.release(&queue, label("Queue.pop: unlock"));
            }
        });

        ctx.join(&producer, label("App.join"));
        ctx.join(&consumer, label("App.join"));
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_finds_the_flush_inversion() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.cycle_count() >= 1, "{p1}");
        let texts: Vec<String> = p1.abstract_cycles.iter().map(|c| c.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("Sink.deliver: lock")),
            "the delivery side of the inversion is named: {texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("Queue.depth: lock")),
            "the flush side of the inversion is named: {texts:?}"
        );
    }

    #[test]
    fn phase2_confirms_the_cycle_through_the_handshake() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(10));
        let report = fuzzer.run();
        assert!(report.confirmed_count() >= 1, "{report}");
    }
}
