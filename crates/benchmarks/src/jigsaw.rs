//! Model of **Jigsaw** — W3C's web server platform (paper §5.1/§5.3/§5.4;
//! 160,388 LoC; 283 potential cycles, ≥ 29 real, reproduced at
//! probability 0.214 with ~19 thrashes/run; ≥ 18 iGoodlock false
//! positives).
//!
//! Two things make Jigsaw the hardest benchmark and both are modeled:
//!
//! 1. **The real deadlocks** (Figure 3): on shutdown, `httpd.cleanup()`
//!    calls `SocketClientFactory.killClients()` which holds the factory
//!    monitor (`:867`) and takes `csList` (`:872`); concurrently each
//!    `SocketClient` finishing a connection takes `csList` (`:623`) and
//!    then the factory (`decrIdleCount:574`). A second variant kills idle
//!    connections through the same locks at different sites. With several
//!    client threads this yields many concrete cycles on one lock pair,
//!    and their interference makes reproduction probabilistic and
//!    thrash-prone.
//! 2. **The false positives** (§5.4): `CachedThread.waitForRunner()`
//!    style cycles that iGoodlock reports but that cannot happen, because
//!    the opposite-order thread is only *started* after the first thread
//!    has released its locks (a happens-before edge iGoodlock ignores).

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Concurrent socket-client threads.
pub const CLIENTS: usize = 3;

/// Builds the Jigsaw model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("jigsaw", |ctx: &TCtx| {
        let factory = ctx.new_lock(label("SocketClientFactory.<init>:130"));
        let cs_list = ctx.new_lock(label("SocketClientFactory.initClientList:139"));

        // --- §5.4 false positives -------------------------------------
        // The main thread acquires (cachedThread → waiterLock) and fully
        // releases *before* starting the CachedThread that acquires them
        // in the opposite order. iGoodlock (no happens-before) reports a
        // cycle; it can never manifest.
        let cached_thread = ctx.new_lock(label("CachedThread.<init>:51"));
        let waiter = ctx.new_lock(label("CachedThread.newWaiterLock:58"));
        {
            let g1 = ctx.lock(&cached_thread, label("ThreadCache.allocateThread:203"));
            let g2 = ctx.lock(&waiter, label("ThreadCache.initWaiter:208"));
            drop(g2);
            drop(g1);
        }
        let fp_runner = ctx.spawn(
            label("ThreadCache.startCachedThread:214"),
            "cached-thread",
            move |ctx| {
                // waitForRunner(): waiter → cachedThread, opposite order —
                // but only ever runs after main released both above.
                let g1 = ctx.lock(&waiter, label("CachedThread.waitForRunner:74"));
                let g2 = ctx.lock(&cached_thread, label("CachedThread.getRunner:81"));
                ctx.work(1);
                drop(g2);
                drop(g1);
            },
        );

        // --- Figure 3 real deadlocks ----------------------------------
        let mut clients = Vec::new();
        for i in 0..CLIENTS {
            clients.push(ctx.spawn(
                label("SocketClientFactory.createClient:311"),
                &format!("SocketClient-{i}"),
                move |ctx| {
                    // Serve a request; clients come in staggered, so the
                    // connection-teardown windows rarely line up with the
                    // shutdown path under plain testing.
                    ctx.work(3 + 4 * i as u32);
                    // clientConnectionFinished(): csList → factory.
                    let g1 = ctx.lock(
                        &cs_list,
                        label("SocketClientFactory.clientConnectionFinished:623"),
                    );
                    let g2 = ctx.lock(&factory, label("SocketClientFactory.decrIdleCount:574"));
                    ctx.work(1);
                    drop(g2);
                    drop(g1);
                    ctx.work(4);
                    // killIdleConnection(): same locks, different sites.
                    let g1 = ctx.lock(&cs_list, label("SocketClient.killIdleConnection:188"));
                    let g2 = ctx.lock(&factory, label("SocketClientFactory.incrFreeCount:581"));
                    ctx.work(1);
                    drop(g2);
                    drop(g1);
                },
            ));
        }

        // The shutdown thread: after the server has run a while, cleanup
        // kills all clients — factory → csList.
        let shutdown = ctx.spawn(label("httpd.run:1711"), "shutdown", move |ctx| {
            ctx.work(34); // the server runs a while before cleanup
            let g1 = ctx.lock(&factory, label("SocketClientFactory.killClients:867"));
            let g2 = ctx.lock(&cs_list, label("SocketClientFactory.killClients:872"));
            ctx.work(1);
            drop(g2);
            drop(g1);
        });

        for c in &clients {
            ctx.join(c, label("httpd.cleanup:1455 join"));
        }
        ctx.join(&shutdown, label("httpd.cleanup:1455 join"));
        ctx.join(&fp_runner, label("ThreadCache.shutdown:230 join"));
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "Jigsaw",
        paper_loc: 160_388,
        // 3 clients × 2 contexts against the shutdown thread + 1 false
        // positive = 7, but Phase I's random schedule may observe fewer.
        expected_cycles: None,
        expected_real: None,
        paper_row: crate::suite::PaperRow {
            cycles: "283",
            real: ">= 29",
            reproduced: "29",
            probability: "0.214",
            thrashes: "18.97",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_reports_real_cycles_and_false_positives() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        // The false-positive cycle is present...
        let fp = p1
            .abstract_cycles
            .iter()
            .filter(|c| c.to_string().contains("waitForRunner"))
            .count();
        assert_eq!(fp, 1, "the §5.4 happens-before-guarded cycle is reported");
        // ...alongside several real factory/csList cycles.
        let real = p1
            .abstract_cycles
            .iter()
            .filter(|c| c.to_string().contains("killClients"))
            .count();
        assert!(real >= 3, "one cycle per client at least, got {real}");
    }

    #[test]
    fn false_positive_is_never_confirmed_and_real_cycles_are() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(6));
        let report = fuzzer.run();
        let mut fp_confirmed = 0;
        let mut real_confirmed = 0;
        for conf in &report.confirmations {
            if conf.cycle.to_string().contains("waitForRunner") {
                if conf.confirmed {
                    fp_confirmed += 1;
                }
            } else if conf.confirmed {
                real_confirmed += 1;
            }
        }
        assert_eq!(
            fp_confirmed, 0,
            "the happens-before-guarded cycle cannot be created"
        );
        assert!(real_confirmed >= 1, "some Figure 3 deadlock is confirmed");
        assert!(
            report.confirmed_count() < report.potential_count(),
            "Jigsaw has unconfirmable reports, like the paper's 283 vs 29"
        );
    }
}
