//! A read-mostly cache behind a reader/writer lock: the program's one
//! opposite-order nesting pairs two *shared* holds of the cache lock,
//! so it can never deadlock — readers coexist. A mode-blind dependency
//! join reports the inversion as a deadlock anyway; the mode-aware join
//! (read–read pruned at the bitset level) keeps the count at zero.
//!
//! This is the false-positive guard for the rwlock vocabulary: the
//! acceptance bar is *zero* cycles on this model, while the same trace
//! with its modes erased must still trip the blind join (proving the
//! zero is earned, not vacuous).

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Concurrent reader threads.
pub const READERS: usize = 3;

/// Builds the read-mostly-cache model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("read-mostly-cache", |ctx: &TCtx| {
        let cache = ctx.new_lock(label("Cache.<init>: rwlock"));
        let stats = ctx.new_lock(label("Stats.<init>: lock"));
        let hits = Shared::new(0usize);

        let mut threads = Vec::new();
        // Readers: cache.read → stats (look the entry up, then count
        // the hit).
        for r in 0..READERS {
            let h = hits.clone();
            threads.push(ctx.spawn(
                label("App.startReader"),
                &format!("reader-{r}"),
                move |ctx| {
                    for _ in 0..2 {
                        ctx.acquire_shared(&cache, label("Cache.get: read"));
                        ctx.work(1);
                        ctx.acquire(&stats, label("Stats.hit: lock"));
                        h.with(|n| *n += 1);
                        ctx.release(&stats, label("Stats.hit: unlock"));
                        ctx.release(&cache, label("Cache.get: unlock"));
                    }
                },
            ));
        }

        // Reporter: stats → cache.read — the opposite order, but the
        // cache side is shared on *both* paths, so the inversion is
        // harmless: a read acquisition proceeds under a read hold.
        let h = hits.clone();
        threads.push(
            ctx.spawn(label("App.startReporter"), "reporter", move |ctx| {
                ctx.acquire(&stats, label("Stats.report: lock"));
                ctx.acquire_shared(&cache, label("Cache.size: read"));
                let _seen = h.with(|n| *n);
                ctx.release(&cache, label("Cache.size: unlock"));
                ctx.release(&stats, label("Stats.report: unlock"));
            }),
        );

        // Writer: refreshes under the exclusive lock and nests nothing,
        // keeping writes on the global lock order.
        threads.push(ctx.spawn(label("App.startWriter"), "writer", move |ctx| {
            for _ in 0..2 {
                ctx.acquire(&cache, label("Cache.refresh: write"));
                ctx.work(2);
                ctx.release(&cache, label("Cache.refresh: unlock"));
            }
        }));

        for t in &threads {
            ctx.join(t, label("App.join"));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::igoodlock::{
        igoodlock, IGoodlockOptions, LockDep, LockDependencyRelation,
    };
    use deadlock_fuzzer::{Config, DeadlockFuzzer};
    use df_events::AcquireMode;

    #[test]
    fn mode_aware_join_reports_zero_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(
            p1.cycle_count(),
            0,
            "read–read inversions are not deadlocks: {p1}"
        );
    }

    #[test]
    fn the_zero_is_earned_not_vacuous() {
        // Erase the modes from the very trace Phase I observed: the
        // blind join must flag the stats/cache inversion, proving the
        // mode-aware zero comes from the read–read pruning and not from
        // the inversion failing to be recorded.
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        let relation = LockDependencyRelation::from_trace(&p1.trace);
        let blind: Vec<LockDep> = relation
            .deps()
            .iter()
            .cloned()
            .map(|mut d| {
                d.mode = AcquireMode::Exclusive;
                d.hold_modes = vec![AcquireMode::Exclusive; d.lockset.len()];
                d
            })
            .collect();
        let blind_relation = LockDependencyRelation::from_deps(blind);
        let cycles = igoodlock(&blind_relation, &IGoodlockOptions::default());
        assert!(
            !cycles.is_empty(),
            "with modes erased the inversion must be flagged"
        );
    }
}
