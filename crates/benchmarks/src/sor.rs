//! Model of **sor** — the ETH successive over-relaxation benchmark
//! (paper §5.1; 17,718 LoC, 0 deadlock cycles).
//!
//! SOR sweeps a grid with worker threads that synchronize on row locks in
//! strictly ascending order (and on a barrier between sweeps), so no
//! lock-order cycle exists. The model: `WORKERS` threads, each sweep locks
//! `(row, row+1)` in ascending index order; a joint join models the
//! barrier.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Grid rows.
pub const ROWS: usize = 6;
/// Worker threads.
pub const WORKERS: usize = 3;
/// Relaxation sweeps.
pub const SWEEPS: usize = 2;

/// Builds the sor model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("sor", |ctx: &TCtx| {
        let rows: Vec<_> = (0..ROWS)
            .map(|_| ctx.new_lock(label("Sor.initRows:33")))
            .collect();
        let sum = Shared::new(0u64);
        for sweep in 0..SWEEPS {
            let mut workers = Vec::new();
            for w in 0..WORKERS {
                let rows = rows.clone();
                let sum = sum.clone();
                workers.push(ctx.spawn(
                    label("Sor.startWorker:58"),
                    &format!("sor-{sweep}-{w}"),
                    move |ctx| {
                        // Each worker relaxes its strip: adjacent row pairs,
                        // always lower index first.
                        let mut r = w;
                        while r + 1 < ROWS {
                            let g1 = ctx.lock(&rows[r], label("Sor.relax:71 lower row"));
                            let g2 = ctx.lock(&rows[r + 1], label("Sor.relax:72 upper row"));
                            sum.with(|s| *s += 1);
                            ctx.work(1);
                            drop(g2);
                            drop(g1);
                            r += WORKERS;
                        }
                    },
                ));
            }
            // Barrier between sweeps: join all workers.
            for wk in &workers {
                ctx.join(wk, label("Sor.barrier:90"));
            }
        }
        assert!(sum.get() > 0);
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "sor",
        paper_loc: 17_718,
        expected_cycles: Some(0),
        expected_real: Some(0),
        paper_row: crate::suite::PaperRow {
            cycles: "0",
            real: "0",
            reproduced: "-",
            probability: "-",
            thrashes: "-",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn ascending_row_order_has_no_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed());
        assert_eq!(p1.cycle_count(), 0);
        assert!(p1.relation_size > 0, "nested row locking was observed");
    }
}
