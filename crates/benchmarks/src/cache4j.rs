//! Model of **cache4j** — "a fast thread-safe implementation of a cache
//! for Java objects" (paper §5.1; 3,897 LoC, 0 deadlock cycles).
//!
//! cache4j guards its cache with a single synchronized facade and performs
//! eviction under a consistent `cache → entry` lock order, so iGoodlock
//! reports nothing. The model: several client threads hammer `get`/`put`
//! through the facade lock, and the evictor nests entry locks strictly
//! after the cache lock.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Number of client threads.
pub const CLIENTS: usize = 3;
/// Operations each client performs.
pub const OPS_PER_CLIENT: usize = 4;

/// Builds the cache4j model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("cache4j", |ctx: &TCtx| {
        // The synchronized cache facade and two entry buckets.
        let cache = ctx.new_lock(label("CacheCell.<init>:40"));
        let bucket_a = ctx.new_lock(label("CacheCell.newBucket:55"));
        let bucket_b = ctx.new_lock(label("CacheCell.newBucket:55"));
        let hits = Shared::new(0u32);

        let mut clients = Vec::new();
        for i in 0..CLIENTS {
            let hits = hits.clone();
            clients.push(ctx.spawn(
                label("CacheTest.startClient:88"),
                &format!("client-{i}"),
                move |ctx| {
                    for op in 0..OPS_PER_CLIENT {
                        // get(): facade lock only.
                        let g = ctx.lock(&cache, label("SynchronizedCache.get:112"));
                        hits.with(|h| *h += 1);
                        drop(g);
                        ctx.yield_now();
                        // put(): facade lock, then (consistently ordered)
                        // bucket lock for the rehash path.
                        let g = ctx.lock(&cache, label("SynchronizedCache.put:131"));
                        let bucket = if op % 2 == 0 { bucket_a } else { bucket_b };
                        let gb = ctx.lock(&bucket, label("CacheCell.store:146"));
                        drop(gb);
                        drop(g);
                        ctx.work(1);
                    }
                },
            ));
        }
        // The evictor thread: cache → bucket_a → (release) → bucket_b,
        // same order as the clients.
        let evictor = ctx.spawn(label("CacheCleaner.start:61"), "evictor", move |ctx| {
            for _ in 0..2 {
                let g = ctx.lock(&cache, label("CacheCleaner.clean:73"));
                let ga = ctx.lock(&bucket_a, label("CacheCleaner.cleanBucket:79"));
                drop(ga);
                let gb = ctx.lock(&bucket_b, label("CacheCleaner.cleanBucket:79"));
                drop(gb);
                drop(g);
                ctx.work(2);
            }
        });
        for c in &clients {
            ctx.join(c, label("CacheTest.main: join"));
        }
        ctx.join(&evictor, label("CacheTest.main: join"));
        assert_eq!(hits.get(), (CLIENTS * OPS_PER_CLIENT) as u32);
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "cache4j",
        paper_loc: 3_897,
        expected_cycles: Some(0),
        expected_real: Some(0),
        paper_row: crate::suite::PaperRow {
            cycles: "0",
            real: "0",
            reproduced: "-",
            probability: "-",
            thrashes: "-",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn no_potential_deadlocks() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 0);
        // Locks are actually exercised (the relation is non-trivial even
        // without cycles).
        assert!(p1.acquires_observed > 10);
    }

    #[test]
    fn completes_under_many_seeds() {
        for seed in 0..5 {
            let fuzzer =
                DeadlockFuzzer::from_ref(program(), Config::default().with_phase1_seed(seed));
            assert!(fuzzer.phase1().run_outcome.is_completed());
        }
    }
}
