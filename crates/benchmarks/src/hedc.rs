//! Model of **hedc** — the ETH web-crawler application (paper §5.1;
//! 25,024 LoC, 0 deadlock cycles).
//!
//! hedc dispatches meta-search tasks through a thread pool; workers take
//! a task under the pool lock and then touch per-host state under host
//! locks, always `pool → task → host` — a consistent partial order with
//! no cycles. The model mirrors that three-level nesting.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::{Shared, TCtx};

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Crawler worker threads.
pub const WORKERS: usize = 3;
/// Tasks each worker processes.
pub const TASKS: usize = 3;

/// Builds the hedc model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("hedc", |ctx: &TCtx| {
        let pool = ctx.new_lock(label("MetaSearchImpl.<init>:102"));
        let hosts: Vec<_> = (0..2)
            .map(|_| ctx.new_lock(label("HostManager.register:44")))
            .collect();
        let completed = Shared::new(0u32);
        let mut workers = Vec::new();
        for w in 0..WORKERS {
            let hosts = hosts.clone();
            let completed = completed.clone();
            workers.push(ctx.spawn(
                label("PooledExecutor.addThread:733"),
                &format!("crawler-{w}"),
                move |ctx| {
                    for t in 0..TASKS {
                        // Dequeue under the pool lock.
                        let gp = ctx.lock(&pool, label("PooledExecutor.getTask:819"));
                        ctx.work(1);
                        // Touch per-host state while holding the pool
                        // lock (consistent order pool → host).
                        let host = &hosts[(w + t) % hosts.len()];
                        let gh = ctx.lock(host, label("HostManager.fetch:67"));
                        drop(gh);
                        drop(gp);
                        // Fetch outside any lock.
                        ctx.work(2);
                        completed.with(|c| *c += 1);
                    }
                },
            ));
        }
        for wk in &workers {
            ctx.join(wk, label("MetaSearchImpl.main: join"));
        }
        assert_eq!(completed.get(), (WORKERS * TASKS) as u32);
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "hedc",
        paper_loc: 25_024,
        expected_cycles: Some(0),
        expected_real: Some(0),
        paper_row: crate::suite::PaperRow {
            cycles: "0",
            real: "0",
            reproduced: "-",
            probability: "-",
            thrashes: "-",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn pool_host_order_has_no_cycles() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed());
        assert_eq!(p1.cycle_count(), 0);
        assert!(p1.relation_size > 0);
    }
}
