//! The §4 example: the thrashing pattern the yield optimization fixes.
//!
//! ```text
//! thread1 {                    thread2 {
//!   synchronized(l1) {           synchronized(l1) { }
//!     synchronized(l2) { }       synchronized(l2) {
//!   }                              synchronized(l1) { }
//! }                              }
//!                              }
//! ```
//!
//! If `thread1` is paused before its inner `l2` acquire while `thread2`
//! has not yet passed its *leading* `synchronized(l1)`, `thread2` blocks
//! on `l1` (held by the paused `thread1`) — a thrash, and the deadlock is
//! missed. The §4 optimization makes `thread1` yield before the
//! *outermost* acquire of its cycle context, giving `thread2` time to pass
//! the leading block.

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// The §4 two-thread program.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("section4", |ctx: &TCtx| {
        let l1 = ctx.new_lock(label("section4.main: new l1"));
        let l2 = ctx.new_lock(label("section4.main: new l2"));
        let t1 = ctx.spawn(label("section4.main: start t1"), "thread1", move |ctx| {
            ctx.acquire(&l1, label("thread1:2"));
            ctx.acquire(&l2, label("thread1:3"));
            ctx.release(&l2, label("thread1:4"));
            ctx.release(&l1, label("thread1:5"));
        });
        let t2 = ctx.spawn(label("section4.main: start t2"), "thread2", move |ctx| {
            ctx.acquire(&l1, label("thread2:9"));
            ctx.release(&l1, label("thread2:11"));
            ctx.acquire(&l2, label("thread2:12"));
            ctx.acquire(&l1, label("thread2:13"));
            ctx.release(&l1, label("thread2:14"));
            ctx.release(&l2, label("thread2:15"));
        });
        ctx.join(&t1, label("section4.main: join"));
        ctx.join(&t2, label("section4.main: join"));
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer};

    #[test]
    fn phase1_finds_the_cycle() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert_eq!(p1.cycle_count(), 1, "one (l1,l2) cycle");
    }

    #[test]
    fn yields_give_higher_probability_than_no_yields() {
        let trials = 30;
        let with_yields =
            DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(trials))
                .run();
        let without_yields = DeadlockFuzzer::from_ref(
            program(),
            Config::default()
                .with_yields(false)
                .with_confirm_trials(trials),
        )
        .run();
        let py = &with_yields.confirmations[0].probability;
        let pn = &without_yields.confirmations[0].probability;
        assert_eq!(
            py.deadlocks, trials,
            "with yields the deadlock is created every time: {py:?}"
        );
        assert!(
            pn.deadlocks < trials || pn.avg_thrashes > py.avg_thrashes,
            "without yields the §4 pattern must miss or thrash: yields={py:?} noyields={pn:?}"
        );
    }
}
