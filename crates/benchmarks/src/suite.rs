//! The benchmark registry used by the Table 1 / Figure 2 harnesses.

use deadlock_fuzzer::ProgramRef;

/// A benchmark entry: the program model plus the metadata the experiment
/// harness reports alongside it. Cloning is cheap — the program model is
/// shared behind its [`ProgramRef`].
#[derive(Clone)]
pub struct Benchmark {
    /// Benchmark name (matches Table 1's "Program name" column).
    pub name: &'static str,
    /// Lines of code of the *original* Java benchmark (Table 1 column 2;
    /// reported for reference — our models are far smaller).
    pub paper_loc: usize,
    /// Number of potential deadlock cycles our model is designed to
    /// produce under iGoodlock (`None` when the count is schedule- or
    /// parameter-dependent, e.g. Jigsaw).
    pub expected_cycles: Option<usize>,
    /// Number of cycles in the model that are *real* (reproducible)
    /// deadlocks (`None` when schedule-dependent).
    pub expected_real: Option<usize>,
    /// The paper's Table 1 values for this benchmark, for side-by-side
    /// reporting: (cycles, real, reproduced, probability, thrashes), each
    /// as printed (strings because the paper uses entries like "9+9+9").
    pub paper_row: PaperRow,
    /// The program model.
    pub program: ProgramRef,
}

/// The published Table 1 row (verbatim strings from the paper).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// iGoodlock cycle count.
    pub cycles: &'static str,
    /// Real deadlocks after manual inspection.
    pub real: &'static str,
    /// Cycles reproduced by DeadlockFuzzer.
    pub reproduced: &'static str,
    /// Probability of reproduction (100 runs/cycle).
    pub probability: &'static str,
    /// Average thrashings per run.
    pub thrashes: &'static str,
}

/// All ten Table 1 benchmarks, in the paper's row order.
pub fn table1_suite() -> Vec<Benchmark> {
    vec![
        crate::cache4j::benchmark(),
        crate::sor::benchmark(),
        crate::hedc::benchmark(),
        crate::jspider::benchmark(),
        crate::jigsaw::benchmark(),
        crate::logging::benchmark(),
        crate::swing::benchmark(),
        crate::dbcp::benchmark(),
        crate::lists::benchmark(),
        crate::maps::benchmark(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_rows_in_paper_order() {
        let suite = table1_suite();
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "cache4j",
                "sor",
                "hedc",
                "jspider",
                "Jigsaw",
                "Java Logging",
                "Java Swing",
                "DBCP",
                "Synchronized Lists",
                "Synchronized Maps",
            ]
        );
    }

    #[test]
    fn paper_loc_matches_table1() {
        let suite = table1_suite();
        let loc: Vec<usize> = suite.iter().map(|b| b.paper_loc).collect();
        assert_eq!(
            loc,
            vec![3_897, 17_718, 25_024, 10_252, 160_388, 4_248, 337_291, 27_194, 17_633, 18_911]
        );
    }
}
