//! Model of **Java Swing** (paper §5.1; 337,291 LoC, 1 cycle, real,
//! reproduced with probability 1.00 at ~4.8 thrashes/run — Sun bug
//! 4839713).
//!
//! The deadlock: the main thread synchronizes on a `JFrame` and calls
//! `setCaretPosition()`, which needs the `BasicTextUI$BasicCaret` monitor
//! (`DefaultCaret.java:1244`); concurrently the `EventQueue` thread holds
//! the caret monitor (`DefaultCaret.java:1304`) and calls back into
//! `RepaintManager.addDirtyRegion` which synchronizes on the frame
//! (`RepaintManager.java:407`).
//!
//! The model captures what makes Swing hard for coarse variants: the
//! EventQueue thread acquires *the same locks many times at many program
//! locations* (paint/layout churn), so ignoring contexts pauses it all
//! over the place and thrashes (Figure 2, bottom-left).

use std::sync::Arc;

use deadlock_fuzzer::{Named, ProgramRef};
use df_events::Label;
use df_runtime::TCtx;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Paint-loop iterations of the EventQueue thread before the deadlocking
/// dispatch.
pub const PAINT_ROUNDS: usize = 4;

/// Builds the swing model.
pub fn program() -> ProgramRef {
    Arc::new(Named::new("swing", |ctx: &TCtx| {
        let frame = ctx.new_lock(label("JFrame.<init>:180"));
        let caret = ctx.new_lock(label("BasicTextUI.createCaret:88"));
        let repaint_queue = ctx.new_lock(label("RepaintManager.<init>:132"));

        let event_queue = ctx.spawn(
            label("EventQueue.initDispatchThread:70"),
            "EventQueue",
            move |ctx| {
                // Paint churn: the caret monitor is taken over and over
                // at unrelated sites (this is what makes the context-free
                // variants pause the EventQueue in the wrong places).
                for _ in 0..PAINT_ROUNDS {
                    let g = ctx.lock(&caret, label("DefaultCaret.paint:601"));
                    ctx.work(1);
                    drop(g);
                    let g = ctx.lock(
                        &repaint_queue,
                        label("RepaintManager.paintDirtyRegions:712"),
                    );
                    ctx.work(1);
                    drop(g);
                    let g = ctx.lock(&caret, label("DefaultCaret.setVisible:955"));
                    drop(g);
                    ctx.yield_now();
                }
                // The deadlocking dispatch: caret blink holds the caret
                // monitor, then repaints — which needs the frame monitor.
                let gc = ctx.lock(&caret, label("DefaultCaret.setDot:1304"));
                let gf = ctx.lock(&frame, label("RepaintManager.addDirtyRegion:407"));
                ctx.work(1);
                drop(gf);
                drop(gc);
            },
        );

        // The main/application thread: long setup, then synchronizes on
        // the frame and moves the caret.
        ctx.work(6);
        let gf = ctx.lock(&frame, label("AppCode.syncOnFrame:33"));
        let gc = ctx.lock(&caret, label("DefaultCaret.setCaretPosition:1244"));
        ctx.work(1);
        drop(gc);
        drop(gf);

        ctx.join(&event_queue, label("AppCode.main: join"));
    }))
}

/// The Table 1 registry entry.
pub fn benchmark() -> crate::suite::Benchmark {
    crate::suite::Benchmark {
        name: "Java Swing",
        paper_loc: 337_291,
        expected_cycles: Some(1),
        expected_real: Some(1),
        paper_row: crate::suite::PaperRow {
            cycles: "1",
            real: "1",
            reproduced: "1",
            probability: "1.00",
            thrashes: "4.83",
        },
        program: program(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deadlock_fuzzer::{Config, DeadlockFuzzer, Variant};

    #[test]
    fn phase1_reports_exactly_one_cycle() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default());
        let p1 = fuzzer.phase1();
        assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
        assert_eq!(p1.cycle_count(), 1);
        let text = p1.abstract_cycles[0].to_string();
        assert!(
            text.contains("1244") && text.contains("407"),
            "cycle: {text}"
        );
    }

    #[test]
    fn cycle_reproduced_reliably() {
        let fuzzer = DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(10));
        let report = fuzzer.run();
        assert_eq!(report.confirmed_count(), 1);
        let p = &report.confirmations[0].probability;
        assert!(
            p.matched >= 9,
            "swing deadlock reproduces almost always: {p:?}"
        );
    }

    #[test]
    fn ignoring_context_hurts_on_swing() {
        // Figure 2: "Ignoring context information increased the thrashing
        // ... for the Swing benchmark" — the same locks are taken at many
        // sites, so context-free matching pauses the EventQueue during
        // paint churn.
        let base =
            DeadlockFuzzer::from_ref(program(), Config::default().with_confirm_trials(12)).run();
        let noctx = DeadlockFuzzer::from_ref(
            program(),
            Config::default()
                .with_variant(Variant::IgnoreContext)
                .with_confirm_trials(12),
        )
        .run();
        let pb = &base.confirmations[0].probability;
        let pn = &noctx.confirmations[0].probability;
        assert!(
            pn.avg_thrashes >= pb.avg_thrashes,
            "no-context must thrash at least as much: base={pb:?} noctx={pn:?}"
        );
    }
}
