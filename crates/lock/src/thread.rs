//! Drop-in tracked thread spawning.

use std::sync::Arc;

use df_events::{caller_site, Label, ThreadId};

use crate::tracker::{self, Tracker, TrackerInner};

/// A `std::thread` replacement whose spawns bind the child to a tracker
/// thread object and emit `Spawn`/`ThreadStart`/`ThreadExit`/`Join`
/// events — so traces of natively-scheduled programs carry the same
/// thread structure the virtual runtime records.
///
/// Threads the tracker did not spawn are still handled: the first
/// tracked-lock operation auto-registers the calling thread under its
/// OS thread name. `TrackedThread` just makes spawn edges and names
/// explicit.
pub struct TrackedThread;

impl TrackedThread {
    /// Spawns a tracked thread under the global tracker, like
    /// `std::thread::spawn`. The caller's source location becomes the
    /// thread object's allocation site.
    #[track_caller]
    pub fn spawn<F, T>(f: F) -> TrackedJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let site = caller_site();
        let inner = Arc::clone(Tracker::global().inner());
        spawn_impl(&inner, format!("tracked@{site}"), site, f)
    }
}

/// Emits `ThreadExit` when the child returns *or unwinds*: the event
/// must flow even for a panicking thread so the trace stays coherent.
struct ExitGuard {
    inner: Arc<TrackerInner>,
    id: ThreadId,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        tracker::thread_exited(&self.inner, self.id);
    }
}

pub(crate) fn spawn_impl<F, T>(
    inner: &Arc<TrackerInner>,
    name: String,
    site: Label,
    f: F,
) -> TrackedJoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let parent = tracker::current_thread(inner);
    let child = tracker::register_thread(inner, name.clone(), site, Some(parent));
    let inner_for_child = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            crate::tls::bind(&inner_for_child, child);
            tracker::thread_started(&inner_for_child, child);
            let _exit = ExitGuard {
                inner: Arc::clone(&inner_for_child),
                id: child,
            };
            f()
        })
        .expect("spawn tracked thread");
    TrackedJoinHandle {
        handle,
        inner: Arc::clone(inner),
        target: child,
    }
}

/// Join handle of a tracked thread; mirrors `std::thread::JoinHandle`.
pub struct TrackedJoinHandle<T> {
    handle: std::thread::JoinHandle<T>,
    inner: Arc<TrackerInner>,
    target: ThreadId,
}

impl<T> TrackedJoinHandle<T> {
    /// The tracker-assigned id of the spawned thread.
    pub fn thread_id(&self) -> ThreadId {
        self.target
    }

    /// Waits for the thread to finish, like
    /// `std::thread::JoinHandle::join`: a panicking child returns
    /// `Err` with the panic payload (and its locks were already
    /// released — with events — during the unwind).
    pub fn join(self) -> std::thread::Result<T> {
        let result = self.handle.join();
        let joiner = tracker::current_thread(&self.inner);
        tracker::thread_joined(&self.inner, joiner, self.target);
        result
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}
