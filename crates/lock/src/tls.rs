//! Per-OS-thread bindings from trackers to their [`df_events::ThreadId`]s.
//!
//! A thread may touch locks of several trackers (a test process runs
//! many), so the binding is a small vector keyed by tracker identity
//! rather than a single slot. Entries hold [`Weak`] references; dead
//! trackers are pruned on the next bind.

use std::cell::RefCell;
use std::sync::{Arc, Weak};

use df_events::ThreadId;

use crate::tracker::TrackerInner;

thread_local! {
    static BINDINGS: RefCell<Vec<(Weak<TrackerInner>, ThreadId)>> =
        const { RefCell::new(Vec::new()) };
}

/// The calling thread's id under `inner`, if it has been bound.
pub(crate) fn lookup(inner: &Arc<TrackerInner>) -> Option<ThreadId> {
    BINDINGS.with(|b| {
        b.borrow().iter().find_map(|(weak, id)| {
            weak.upgrade()
                .filter(|a| Arc::ptr_eq(a, inner))
                .map(|_| *id)
        })
    })
}

/// Binds the calling thread to `id` under `inner`.
pub(crate) fn bind(inner: &Arc<TrackerInner>, id: ThreadId) {
    BINDINGS.with(|b| {
        let mut v = b.borrow_mut();
        v.retain(|(weak, _)| weak.strong_count() > 0);
        v.push((Arc::downgrade(inner), id));
    });
}
