//! The online wait-for graph behind the tracked locks.
//!
//! Unlike [`df_runtime::WaitForGraph`] — which models the virtual
//! runtime's single-holder mutexes and treats a self-wait as re-entrant
//! (not a deadlock) — native `std::sync` locks are *not* re-entrant and
//! a [`crate::TrackedRwLock`] can be held by many readers at once. So
//! this graph keeps a holder *set* per lock, walks every holder during
//! the cycle search, and counts a self-loop (a thread blocking on a lock
//! it already holds) as a genuine one-thread deadlock.

use std::collections::{HashMap, HashSet};

use df_events::{ObjId, ThreadId};

/// Thread→lock wait edges plus lock→holders ownership edges, rebuilt
/// from the tracker's registry at each contended acquire.
///
/// Holds and waits both carry their [`df_events::AcquireMode`]-shaped
/// distinction: only a conflicting hold produces a wait-for edge. An
/// exclusive (write) wait conflicts with every holder; a shared (read)
/// wait conflicts with exclusive holders only — readers coexist, so a
/// blocked read never points at another reader.
#[derive(Debug, Default)]
pub(crate) struct WfGraph {
    writers: HashMap<ObjId, Vec<ThreadId>>,
    readers: HashMap<ObjId, Vec<ThreadId>>,
    /// thread → (awaited lock, wait is shared).
    waits: HashMap<ThreadId, (ObjId, bool)>,
}

impl WfGraph {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records that `t` holds `lock` exclusively (mutex owner, rwlock
    /// writer).
    pub(crate) fn add_holds(&mut self, t: ThreadId, lock: ObjId) {
        self.writers.entry(lock).or_default().push(t);
    }

    /// Records that `t` is one of the shared (read) holders of `lock`.
    pub(crate) fn add_holds_shared(&mut self, t: ThreadId, lock: ObjId) {
        self.readers.entry(lock).or_default().push(t);
    }

    /// Records that `t` is blocked acquiring `lock` exclusively.
    pub(crate) fn add_waits(&mut self, t: ThreadId, lock: ObjId) {
        self.waits.insert(t, (lock, false));
    }

    /// Records that `t` is blocked acquiring `lock` in shared mode.
    pub(crate) fn add_waits_shared(&mut self, t: ThreadId, lock: ObjId) {
        self.waits.insert(t, (lock, true));
    }

    /// Finds a cycle through `start`: threads `start → t_2 → … → t_m`
    /// where each waits for a lock held by the next and `t_m`'s awaited
    /// lock is held by `start`. Returns the threads in cycle order, or
    /// `None`. A self-loop (`start` waits for a lock it holds) is a
    /// one-element cycle — `std::sync` locks are not re-entrant.
    pub(crate) fn find_cycle_from(&self, start: ThreadId) -> Option<Vec<ThreadId>> {
        let mut path = vec![start];
        let mut visited = HashSet::from([start]);
        if self.dfs(start, start, &mut path, &mut visited) {
            Some(path)
        } else {
            None
        }
    }

    /// Depth-first walk over holder edges. A thread that cannot reach
    /// `start` can never reach it along another branch either, so the
    /// `visited` set is a sound memo and the walk is linear in threads.
    fn dfs(
        &self,
        cur: ThreadId,
        start: ThreadId,
        path: &mut Vec<ThreadId>,
        visited: &mut HashSet<ThreadId>,
    ) -> bool {
        let Some(&(lock, shared_wait)) = self.waits.get(&cur) else {
            return false;
        };
        let writers = self.writers.get(&lock).into_iter().flatten().copied();
        // A shared wait is only blocked by writers; readers coexist.
        let readers = if shared_wait {
            None
        } else {
            self.readers.get(&lock)
        };
        let holders = writers.chain(readers.into_iter().flatten().copied());
        for h in holders {
            if h == start {
                return true;
            }
            if visited.insert(h) {
                path.push(h);
                if self.dfs(h, start, path, visited) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn o(i: u32) -> ObjId {
        ObjId::new(i)
    }

    #[test]
    fn two_cycle_found_in_order() {
        let mut g = WfGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        assert_eq!(g.find_cycle_from(t(1)), Some(vec![t(1), t(2)]));
        assert_eq!(g.find_cycle_from(t(2)), Some(vec![t(2), t(1)]));
    }

    #[test]
    fn three_cycle_found_from_any_member() {
        let mut g = WfGraph::new();
        for i in 1..=3 {
            g.add_holds(t(i), o(i));
            g.add_waits(t(i), o(i % 3 + 1));
        }
        for start in 1..=3 {
            let c = g.find_cycle_from(t(start)).unwrap();
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], t(start));
        }
    }

    #[test]
    fn hierarchy_has_no_cycle() {
        let mut g = WfGraph::new();
        g.add_holds(t(1), o(1));
        g.add_waits(t(1), o(2));
        g.add_holds(t(2), o(2));
        g.add_waits(t(2), o(3));
        assert!(g.find_cycle_from(t(1)).is_none());
        assert!(g.find_cycle_from(t(2)).is_none());
    }

    #[test]
    fn self_loop_is_a_one_thread_cycle() {
        // Non-re-entrant std lock: blocking on a lock you hold is a
        // real single-thread deadlock, unlike the virtual runtime.
        let mut g = WfGraph::new();
        g.add_holds(t(1), o(1));
        g.add_waits(t(1), o(1));
        assert_eq!(g.find_cycle_from(t(1)), Some(vec![t(1)]));
    }

    #[test]
    fn cycle_through_one_of_many_readers() {
        // t1 writes-waits on a lock read-held by t2 and t3; only t3
        // closes the cycle back to t1.
        let mut g = WfGraph::new();
        g.add_holds_shared(t(2), o(1));
        g.add_holds_shared(t(3), o(1));
        g.add_holds(t(1), o(2));
        g.add_waits(t(1), o(1));
        g.add_waits(t(3), o(2));
        let c = g.find_cycle_from(t(1)).unwrap();
        assert_eq!(c, vec![t(1), t(3)]);
    }

    #[test]
    fn shared_wait_ignores_shared_holders() {
        // t1 read-waits on a lock read-held by t2 — readers coexist, so
        // even a t2 that circles back to t1 is not a deadlock edge.
        let mut g = WfGraph::new();
        g.add_holds_shared(t(2), o(1));
        g.add_holds(t(1), o(2));
        g.add_waits_shared(t(1), o(1));
        g.add_waits(t(2), o(2));
        assert!(g.find_cycle_from(t(1)).is_none());
        // From t2 the walk reaches t1, whose shared wait still cannot
        // point back at reader t2 — no cycle from either side.
        assert!(g.find_cycle_from(t(2)).is_none());
    }

    #[test]
    fn shared_wait_on_a_writer_closes_cycles() {
        // t1 read-waits on o1 write-held by t2; t2 write-waits on o2
        // read-held by t1 — a reader/writer 2-cycle.
        let mut g = WfGraph::new();
        g.add_holds(t(2), o(1));
        g.add_holds_shared(t(1), o(2));
        g.add_waits_shared(t(1), o(1));
        g.add_waits(t(2), o(2));
        assert_eq!(g.find_cycle_from(t(1)), Some(vec![t(1), t(2)]));
        assert_eq!(g.find_cycle_from(t(2)), Some(vec![t(2), t(1)]));
    }

    #[test]
    fn upgrade_self_loop_is_a_one_thread_cycle() {
        // A thread write-waiting on a lock it read-holds: the classic
        // std::sync::RwLock upgrade deadlock.
        let mut g = WfGraph::new();
        g.add_holds_shared(t(1), o(1));
        g.add_waits(t(1), o(1));
        assert_eq!(g.find_cycle_from(t(1)), Some(vec![t(1)]));
    }

    #[test]
    fn tail_into_a_cycle_is_not_part_of_it() {
        let mut g = WfGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        g.add_waits(t(3), o(1));
        // The cycle exists, but it does not pass through t3.
        assert!(g.find_cycle_from(t(3)).is_none());
        assert!(g.find_cycle_from(t(1)).is_some());
    }
}
