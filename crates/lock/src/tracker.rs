//! The tracker: the shared registry behind the drop-in lock types.
//!
//! Every [`crate::TrackedMutex`] / [`crate::TrackedRwLock`] created
//! under a tracker reports its lifecycle here. The tracker assigns
//! [`ThreadId`]s to native threads (lazily, on first contact), emits the
//! same event stream the virtual runtime would — `New`, `Acquire` with
//! held-set and context, `Release`, `Blocked`/`Unblocked`, spawn and
//! exit events — into the attached [`SinkHandle`], and maintains the
//! live holds/waits registry the online wait-for-graph detector walks.
//!
//! ## Why detection cannot miss and cannot lie
//!
//! All bookkeeping happens under one internal mutex, and the protocol
//! orders updates around the native lock operations:
//!
//! * ownership is recorded *before* a thread's next wait edge is
//!   registered (program order), and every thread of a forming cycle
//!   registers its wait edge before parking — so the last thread to
//!   register sees the complete cycle and reports it;
//! * ownership is cleared *before* the native unlock and the wait edge
//!   of a contended acquire is cleared (with ownership recorded) in the
//!   same critical section after the native lock is obtained — so the
//!   registry never claims a hold that has been given up, and a stale
//!   wait edge always points at a lock whose registry holder entry is
//!   already cleared. False cycles cannot form.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use df_events::{
    AcquireMode, Event, EventKind, IndexFrame, Label, ObjId, ObjKind, ObjectTable, SinkHandle,
    ThreadId, Trace,
};
use df_obs::Obs;
use df_runtime::{DeadlockWitness, Detector, WitnessComponent};
use parking_lot::Mutex;

use crate::handler::{DeadlockHandler, LIVE_DEADLOCK_EXIT_CODE};
use crate::tls;
use crate::wfg::WfGraph;

/// Configuration of a [`Tracker`], built with `with_*` chaining.
#[derive(Debug, Default)]
pub struct TrackerConfig {
    /// Policy invoked when the online detector closes a cycle.
    pub handler: DeadlockHandler,
    /// Streaming observers of the emitted event stream (a spill writer,
    /// a relation builder, …). Sinks run on program threads and must
    /// not acquire tracked locks.
    pub sink: SinkHandle,
    /// Observability handle for the `wfg_*`/`lock_timeouts`/
    /// `poisoned_recovered` counters.
    pub obs: Obs,
    /// Also materialize the event vector in memory (the trace handed to
    /// sinks on [`Tracker::seal`] then carries events, not just the
    /// object table). Off by default: streaming sinks don't need it.
    pub record_events: bool,
}

impl TrackerConfig {
    /// Sets the deadlock handler.
    pub fn with_handler(mut self, handler: DeadlockHandler) -> Self {
        self.handler = handler;
        self
    }

    /// Attaches the streaming sinks.
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// Uses `obs` for counters.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Also records the in-memory event trace.
    pub fn with_record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Attaches a spill sink writing to `out` with the given
    /// [`df_events::SpillConfig`] (format + optional ring buffering) and
    /// returns both the updated config and a handle to the sink, which
    /// the caller must [`df_events::AnySpillSink::close`] after
    /// [`Tracker::seal`] to harvest the event/byte counts.
    ///
    /// # Errors
    ///
    /// Returns the [`df_events::SpillError`] of writing the artifact
    /// preamble.
    #[allow(clippy::type_complexity)]
    pub fn with_spill<W: std::io::Write + Send + 'static>(
        mut self,
        out: W,
        config: &df_events::SpillConfig,
    ) -> Result<(Self, Arc<std::sync::Mutex<df_events::AnySpillSink<W>>>), df_events::SpillError>
    {
        let sink = Arc::new(std::sync::Mutex::new(df_events::AnySpillSink::new(
            out, config,
        )?));
        self.sink = self.sink.with(sink.clone());
        Ok((self, sink))
    }
}

/// Which threads hold a lock right now. Absent from the registry means
/// the lock is free.
#[derive(Debug)]
enum Holders {
    /// Exclusive: a mutex owner or an rwlock writer.
    Writer(ThreadId),
    /// Shared: rwlock readers, possibly several, possibly repeated.
    Readers(Vec<ThreadId>),
}

#[derive(Debug)]
struct ThreadState {
    obj: ObjId,
    name: String,
    /// Locks held, outermost first (repeats on re-entrant tries).
    lock_stack: Vec<ObjId>,
    /// Acquisition sites parallel to `lock_stack`.
    context_stack: Vec<Label>,
    /// Per-site allocation counts for execution-index object metadata.
    alloc_counts: HashMap<Label, u32>,
}

#[derive(Default)]
struct State {
    /// Object table + thread bindings (+ events when `record_events`).
    trace: Trace,
    event_seq: u64,
    next_thread: u32,
    threads: HashMap<ThreadId, ThreadState>,
    locks: HashMap<ObjId, Holders>,
    /// Blocked contended acquires: thread → (awaited lock, site, mode).
    waits: HashMap<ThreadId, (ObjId, Label, AcquireMode)>,
    /// Sorted lock sets (held ∪ awaited across the cycle) of deadlocks
    /// already reported, so a persisting deadlock is not re-reported by
    /// every thread that bumps into it.
    reported: HashSet<Vec<ObjId>>,
    sealed: bool,
}

/// Shared guts of a [`Tracker`]; lock types hold an `Arc` to this.
pub struct TrackerInner {
    state: Mutex<State>,
    sink: SinkHandle,
    obs: Obs,
    handler: DeadlockHandler,
    record_events: bool,
}

/// Exclusive (write) or shared (read) acquisition, for the registry.
/// The registry speaks the same mode vocabulary as the event stream.
pub(crate) type Access = AcquireMode;

/// Tracks native threads and locks, detects deadlocks online.
///
/// Cheap to clone (an `Arc`); every tracked object created through a
/// clone shares the same registry, event stream and detector.
#[derive(Clone)]
pub struct Tracker {
    inner: Arc<TrackerInner>,
}

static GLOBAL: OnceLock<Tracker> = OnceLock::new();

impl Default for Tracker {
    fn default() -> Self {
        Tracker::new(TrackerConfig::default())
    }
}

impl Tracker {
    /// Creates a tracker with `config`.
    pub fn new(config: TrackerConfig) -> Self {
        Tracker {
            inner: Arc::new(TrackerInner {
                state: Mutex::new(State::default()),
                sink: config.sink,
                obs: config.obs,
                handler: config.handler,
                record_events: config.record_events,
            }),
        }
    }

    /// Installs `config` as the process-wide tracker used by
    /// [`crate::TrackedMutex::new`] and friends, and returns it.
    ///
    /// # Panics
    ///
    /// Panics if a global tracker already exists (a default one is
    /// created lazily by the first drop-in constructor — install before
    /// creating tracked objects).
    pub fn install(config: TrackerConfig) -> &'static Tracker {
        if GLOBAL.set(Tracker::new(config)).is_err() {
            panic!("a global df-lock tracker is already installed");
        }
        GLOBAL.get().expect("just installed")
    }

    /// The process-wide tracker (installing a default-configured one —
    /// log-only handler, no sinks — on first use).
    pub fn global() -> &'static Tracker {
        GLOBAL.get_or_init(Tracker::default)
    }

    /// The observability handle counters are reported through.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Seals the run: records the trace high-water mark and delivers
    /// `on_finish` (with the object table and thread bindings) to every
    /// sink, so an attached [`df_events::SpillSink`] writes its footer
    /// and the artifact becomes analyzable. Idempotent; also invoked by
    /// the [`DeadlockHandler::SealAndExit`] handler before exiting.
    pub fn seal(&self) {
        seal(&self.inner);
    }

    /// Spawns a tracked thread under this tracker. See
    /// [`crate::TrackedThread::spawn`] for the drop-in variant.
    #[track_caller]
    pub fn spawn<F, T>(&self, name: &str, f: F) -> crate::thread::TrackedJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::thread::spawn_impl(&self.inner, name.to_string(), df_events::caller_site(), f)
    }

    pub(crate) fn inner(&self) -> &Arc<TrackerInner> {
        &self.inner
    }
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Tracker")
            .field("threads", &st.threads.len())
            .field("locks_held", &st.locks.len())
            .field("sealed", &st.sealed)
            .finish()
    }
}

/// Assigns the next sequence number and delivers one event.
fn emit(inner: &TrackerInner, st: &mut State, thread: ThreadId, kind: EventKind) {
    let seq = st.event_seq;
    st.event_seq += 1;
    let event = Event::new(seq, thread, kind);
    if inner.record_events {
        let s = st.trace.push(event.thread, event.kind.clone());
        debug_assert_eq!(s, seq, "recorded trace stays in sequence order");
    }
    if inner.sink.is_attached() {
        inner.sink.emit(&event);
        inner.obs.counters().add_events_streamed(1);
    }
}

/// The execution-index frame of an allocation: the allocating statement
/// with its per-thread occurrence count, which is what the `absI_k`
/// abstraction of analyzed spills keys on.
fn alloc_index(st: &mut State, by: ThreadId, site: Label) -> Vec<IndexFrame> {
    let counts = match st.threads.get_mut(&by) {
        Some(ts) => &mut ts.alloc_counts,
        None => return vec![IndexFrame::new(site, 1)],
    };
    let q = counts.entry(site).or_insert(0);
    *q += 1;
    vec![IndexFrame::new(site, *q)]
}

/// Registers a thread: assigns an id, creates its thread object, binds
/// it in the trace and announces the binding to sinks (always before
/// any event of the thread can be emitted).
pub(crate) fn register_thread(
    inner: &Arc<TrackerInner>,
    name: String,
    site: Label,
    spawner: Option<ThreadId>,
) -> ThreadId {
    let (id, obj) = {
        let mut st = inner.state.lock();
        let id = ThreadId::new(st.next_thread);
        st.next_thread += 1;
        let index = match spawner {
            Some(parent) => alloc_index(&mut st, parent, site),
            None => vec![IndexFrame::new(site, 1)],
        };
        let obj = st.trace.objects_mut().create_named(
            ObjKind::Thread,
            site,
            None,
            index,
            Some(name.clone()),
        );
        st.trace.bind_thread(id, obj);
        st.threads.insert(
            id,
            ThreadState {
                obj,
                name,
                lock_stack: Vec::new(),
                context_stack: Vec::new(),
                alloc_counts: HashMap::new(),
            },
        );
        if let Some(parent) = spawner {
            emit(
                inner,
                &mut st,
                parent,
                EventKind::Spawn {
                    child: id,
                    child_obj: obj,
                },
            );
        }
        (id, obj)
    };
    inner.sink.thread_bound(id, obj);
    id
}

/// The calling thread's id under `inner`, auto-registering it (with its
/// OS thread name, when set) on first contact — this is what makes the
/// lock types drop-in for threads the tracker did not spawn.
pub(crate) fn current_thread(inner: &Arc<TrackerInner>) -> ThreadId {
    if let Some(id) = tls::lookup(inner) {
        return id;
    }
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| "<unnamed>".to_string());
    let id = register_thread(inner, name, Label::new("<native thread>"), None);
    tls::bind(inner, id);
    id
}

/// Registers a lock object at its allocation site and emits `New`.
pub(crate) fn register_lock(inner: &Arc<TrackerInner>, site: Label) -> ObjId {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    let index = alloc_index(&mut st, me, site);
    let obj = st
        .trace
        .objects_mut()
        .create(ObjKind::Lock, site, None, index);
    emit(inner, &mut st, me, EventKind::New { obj });
    obj
}

/// Registers a condition variable object (an [`ObjKind::Plain`] object,
/// like the virtual runtime's condvars) at its allocation site and
/// emits `New`.
pub(crate) fn register_condvar(inner: &Arc<TrackerInner>, site: Label) -> ObjId {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    let index = alloc_index(&mut st, me, site);
    let obj = st
        .trace
        .objects_mut()
        .create(ObjKind::Plain, site, None, index);
    emit(inner, &mut st, me, EventKind::New { obj });
    obj
}

/// Records ownership and emits `Acquire`/`Reacquire` for a completed
/// acquisition. Must be called with the native lock already held.
fn record_acquire(
    inner: &TrackerInner,
    st: &mut State,
    me: ThreadId,
    lock: ObjId,
    site: Label,
    access: Access,
) {
    match access {
        Access::Exclusive => {
            st.locks.insert(lock, Holders::Writer(me));
        }
        Access::Shared => match st
            .locks
            .entry(lock)
            .or_insert_with(|| Holders::Readers(vec![]))
        {
            Holders::Readers(rs) => rs.push(me),
            // A writer entry here would mean std handed out a read
            // guard while a write guard exists; keep the stronger claim.
            Holders::Writer(_) => {}
        },
    }
    let ts = st
        .threads
        .get_mut(&me)
        .expect("acquiring thread registered");
    let re_entrant = ts.lock_stack.contains(&lock);
    let held = ts.lock_stack.clone();
    let mut context = ts.context_stack.clone();
    context.push(site);
    ts.lock_stack.push(lock);
    ts.context_stack.push(site);
    if re_entrant {
        emit(inner, st, me, EventKind::reacquire(lock, site));
    } else {
        emit(
            inner,
            st,
            me,
            EventKind::acquire(lock, site, held, context).with_mode(access),
        );
        inner.obs.counters().add_acquires_observed(1);
    }
}

/// Bookkeeping for a non-blocking `try_*` attempt. A successful try
/// joins the registry and the held stack exactly like an acquisition,
/// but the stream records it as `TryAcquire { acquired: true }` — a try
/// never blocks, so Phase I must not treat it as a blockable edge. A
/// failed try leaves all state untouched and records
/// `TryAcquire { acquired: false }`.
pub(crate) fn try_acquired(
    inner: &Arc<TrackerInner>,
    lock: ObjId,
    site: Label,
    access: Access,
    acquired: bool,
) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    if !acquired {
        emit(
            inner,
            &mut st,
            me,
            EventKind::try_acquire(lock, site, false).with_mode(access),
        );
        return;
    }
    match access {
        Access::Exclusive => {
            st.locks.insert(lock, Holders::Writer(me));
        }
        Access::Shared => match st
            .locks
            .entry(lock)
            .or_insert_with(|| Holders::Readers(vec![]))
        {
            Holders::Readers(rs) => rs.push(me),
            Holders::Writer(_) => {}
        },
    }
    let ts = st
        .threads
        .get_mut(&me)
        .expect("acquiring thread registered");
    let re_entrant = ts.lock_stack.contains(&lock);
    ts.lock_stack.push(lock);
    ts.context_stack.push(site);
    if re_entrant {
        emit(inner, &mut st, me, EventKind::reacquire(lock, site));
    } else {
        emit(
            inner,
            &mut st,
            me,
            EventKind::try_acquire(lock, site, true).with_mode(access),
        );
        inner.obs.counters().add_acquires_observed(1);
    }
}

/// Bookkeeping for an acquisition that succeeded without blocking.
pub(crate) fn acquired_uncontended(
    inner: &Arc<TrackerInner>,
    lock: ObjId,
    site: Label,
    access: Access,
) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    record_acquire(inner, &mut st, me, lock, site, access);
}

/// Registers the wait edge of a contended acquisition *before* the
/// caller parks on the native lock, and runs cycle detection from the
/// blocking thread. This is the detector's single entry point: a cycle
/// exists exactly when its last wait edge is registered, and that
/// registration happens here, under the registry lock.
pub(crate) fn begin_wait(inner: &Arc<TrackerInner>, lock: ObjId, site: Label, access: Access) {
    let me = current_thread(inner);
    let report = {
        let mut st = inner.state.lock();
        st.waits.insert(me, (lock, site, access));
        inner.obs.counters().add_wfg_edges(1);
        emit(
            inner,
            &mut st,
            me,
            EventKind::blocked(lock).with_mode(access),
        );
        detect(&mut st, me)
    };
    // Handler dispatch happens after the registry lock is dropped so a
    // SealAndExit (which seals sinks) or a callback cannot deadlock
    // against other program threads touching the tracker.
    if let Some((witness, rendered)) = report {
        inner.obs.counters().add_wfg_cycles_detected(1);
        dispatch(inner, &witness, &rendered);
    }
}

/// The blocked acquisition of `lock` succeeded: clears the wait edge,
/// emits `Unblocked`, records ownership.
pub(crate) fn acquired_contended(
    inner: &Arc<TrackerInner>,
    lock: ObjId,
    site: Label,
    access: Access,
) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    st.waits.remove(&me);
    emit(inner, &mut st, me, EventKind::unblocked(lock));
    record_acquire(inner, &mut st, me, lock, site, access);
}

/// A timed acquisition gave up: clears the wait edge and counts the
/// timeout. No `Unblocked` is emitted — that event means "acquired".
pub(crate) fn wait_timed_out(inner: &Arc<TrackerInner>, _lock: ObjId) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    st.waits.remove(&me);
    inner.obs.counters().add_lock_timeouts(1);
}

/// Release bookkeeping, called by guard drops *before* the native
/// unlock so the registry never claims a hold the thread gave up.
/// Emitted even during a panic unwind, which keeps the relation
/// balanced after poisoning.
pub(crate) fn release(inner: &Arc<TrackerInner>, lock: ObjId, site: Label) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    // The guard doesn't know its own mode; the registry does — a
    // read-guard drop finds this thread among the lock's readers.
    let mut mode = Access::Exclusive;
    match st.locks.get_mut(&lock) {
        Some(Holders::Writer(t)) if *t == me => {
            st.locks.remove(&lock);
        }
        Some(Holders::Readers(rs)) => {
            mode = Access::Shared;
            if let Some(pos) = rs.iter().rposition(|&t| t == me) {
                rs.remove(pos);
            }
            if rs.is_empty() {
                st.locks.remove(&lock);
            }
        }
        _ => {}
    }
    let ts = st
        .threads
        .get_mut(&me)
        .expect("releasing thread registered");
    if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
        ts.lock_stack.remove(pos);
        ts.context_stack.remove(pos);
    }
    let still_held = ts.lock_stack.contains(&lock);
    if still_held {
        emit(inner, &mut st, me, EventKind::rerelease(lock, site));
    } else {
        emit(
            inner,
            &mut st,
            me,
            EventKind::release(lock, site).with_mode(mode),
        );
    }
}

/// The release half of a condvar wait, run *before* the native
/// `Condvar::wait` parks (which atomically gives the lock up): clears
/// this thread's write hold, emits the `CondWait` communication event,
/// and registers the eventual-reacquire wait edge — a parked waiter is
/// one notify away from blocking on the lock, so cycles running through
/// it are real deadlocks and must be visible to other threads'
/// detection passes.
pub(crate) fn cond_wait_begin(inner: &Arc<TrackerInner>, condvar: ObjId, lock: ObjId, site: Label) {
    let me = current_thread(inner);
    let report = {
        let mut st = inner.state.lock();
        if matches!(st.locks.get(&lock), Some(Holders::Writer(t)) if *t == me) {
            st.locks.remove(&lock);
        }
        let ts = st.threads.get_mut(&me).expect("waiting thread registered");
        if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
            ts.lock_stack.remove(pos);
            ts.context_stack.remove(pos);
        }
        emit(
            inner,
            &mut st,
            me,
            EventKind::cond_wait(condvar, lock, site),
        );
        st.waits.insert(me, (lock, site, Access::Exclusive));
        inner.obs.counters().add_wfg_edges(1);
        detect(&mut st, me)
    };
    if let Some((witness, rendered)) = report {
        inner.obs.counters().add_wfg_cycles_detected(1);
        dispatch(inner, &witness, &rendered);
    }
}

/// The reacquire half of a condvar wait, run after the native wait
/// returned with the lock re-held: clears the wait edge and restores
/// ownership *silently* — matching the virtual runtime, where the
/// original `Acquire` already carries the lock dependency and the
/// reacquisition emits nothing.
pub(crate) fn cond_wait_end(inner: &Arc<TrackerInner>, lock: ObjId, site: Label) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    st.waits.remove(&me);
    st.locks.insert(lock, Holders::Writer(me));
    let ts = st.threads.get_mut(&me).expect("waiting thread registered");
    ts.lock_stack.push(lock);
    ts.context_stack.push(site);
}

/// Emits the `CondNotify` communication event. Rust `Condvar` semantics:
/// the notifier need not hold any lock.
pub(crate) fn cond_notify(inner: &Arc<TrackerInner>, condvar: ObjId, site: Label, all: bool) {
    let me = current_thread(inner);
    let mut st = inner.state.lock();
    emit(
        inner,
        &mut st,
        me,
        EventKind::cond_notify(condvar, site, all),
    );
}

/// Counts a poisoned-lock recovery (`PoisonError::into_inner`).
pub(crate) fn note_poison_recovered(inner: &Arc<TrackerInner>) {
    inner.obs.counters().add_poisoned_recovered(1);
}

/// Emits `ThreadStart` for a freshly spawned tracked thread.
pub(crate) fn thread_started(inner: &Arc<TrackerInner>, id: ThreadId) {
    let mut st = inner.state.lock();
    emit(inner, &mut st, id, EventKind::ThreadStart);
}

/// Emits `ThreadExit`; runs from a drop guard so it fires even when the
/// thread body panicked.
pub(crate) fn thread_exited(inner: &Arc<TrackerInner>, id: ThreadId) {
    let mut st = inner.state.lock();
    emit(inner, &mut st, id, EventKind::ThreadExit);
}

/// Emits `Join` after a tracked join completes.
pub(crate) fn thread_joined(inner: &Arc<TrackerInner>, joiner: ThreadId, target: ThreadId) {
    let mut st = inner.state.lock();
    emit(inner, &mut st, joiner, EventKind::Join { target });
}

/// Walks the wait-for graph from `me`; on a new cycle builds the
/// witness and its rendered report (both under the registry lock, so
/// the snapshot is consistent), for dispatch after unlock.
fn detect(st: &mut State, me: ThreadId) -> Option<(DeadlockWitness, String)> {
    let mut g = WfGraph::new();
    for (&lock, holders) in &st.locks {
        match holders {
            Holders::Writer(t) => g.add_holds(*t, lock),
            Holders::Readers(rs) => {
                for &t in rs {
                    g.add_holds_shared(t, lock);
                }
            }
        }
    }
    for (&t, &(lock, _, mode)) in &st.waits {
        match mode {
            Access::Exclusive => g.add_waits(t, lock),
            Access::Shared => g.add_waits_shared(t, lock),
        }
    }
    let cycle = g.find_cycle_from(me)?;

    // Dedup on the deadlock's full lock set — held ∪ awaited across the
    // cycle's threads. Keying on awaited locks alone reports a
    // reader-heavy cycle once per reader: each reader that bumps into
    // the same stuck writer closes a cycle with a different awaited
    // set, but the union of locks involved is identical.
    let mut key: Vec<ObjId> = cycle
        .iter()
        .flat_map(|t| {
            st.threads[t]
                .lock_stack
                .iter()
                .copied()
                .chain(std::iter::once(
                    st.waits.get(t).expect("cycle thread waits").0,
                ))
        })
        .collect();
    key.sort();
    key.dedup();
    if !st.reported.insert(key) {
        return None;
    }

    let components: Vec<WitnessComponent> = cycle
        .iter()
        .map(|t| {
            let ts = &st.threads[t];
            let &(waiting_for, site, waiting_mode) = st.waits.get(t).expect("cycle thread waits");
            let mut context = ts.context_stack.clone();
            context.push(site);
            let holding = ts.lock_stack.clone();
            let holding_modes = holding
                .iter()
                .map(|l| match st.locks.get(l) {
                    Some(Holders::Writer(w)) if w == t => Access::Exclusive,
                    _ => Access::Shared,
                })
                .collect();
            WitnessComponent {
                thread: *t,
                thread_obj: ts.obj,
                thread_name: Some(ts.name.clone()),
                holding,
                holding_modes,
                waiting_for,
                waiting_mode,
                context,
            }
        })
        .collect();
    let witness = DeadlockWitness {
        components,
        detected_by: Detector::WaitForGraph,
    };
    let rendered = render_report(&witness, st.trace.objects());
    Some((witness, rendered))
}

/// Names a lock by id and allocation site, e.g.
/// `o5 (allocated at examples/native_deadlock.rs:31:37)`.
fn lock_name(objects: &ObjectTable, id: ObjId) -> String {
    match objects.try_get(id) {
        Some(meta) => format!("{id} (allocated at {})", meta.site),
        None => id.to_string(),
    }
}

/// The human-readable witness report: names every thread, the locks it
/// holds (with allocation sites) and the blocked acquisition site —
/// enough to line the live cycle up against `dfz analyze` output.
fn render_report(witness: &DeadlockWitness, objects: &ObjectTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "df-lock: real deadlock among {} thread(s) (detected by {}):",
        witness.len(),
        witness.detected_by
    );
    for c in &witness.components {
        let name = c.thread_name.as_deref().unwrap_or("?");
        let holding = if c.holding.is_empty() {
            "nothing".to_string()
        } else {
            c.holding
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    let read = c
                        .holding_modes
                        .get(i)
                        .map(|m| m.is_shared())
                        .unwrap_or(false);
                    if read {
                        format!("{} (read)", lock_name(objects, l))
                    } else {
                        lock_name(objects, l)
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let blocked_at = c.context.last().map(|s| s.to_string()).unwrap_or_default();
        let want = if c.waiting_mode.is_shared() {
            "read of "
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  thread {} '{}' holds {holding}, blocked acquiring {want}{} at {blocked_at}",
            c.thread,
            name,
            lock_name(objects, c.waiting_for),
        );
    }
    out
}

/// Invokes the configured handler with a finished witness.
fn dispatch(inner: &Arc<TrackerInner>, witness: &DeadlockWitness, rendered: &str) {
    match &inner.handler {
        DeadlockHandler::Log => eprint!("{rendered}"),
        DeadlockHandler::SealAndExit => {
            eprint!("{rendered}");
            eprintln!("df-lock: sealing spill and exiting with code {LIVE_DEADLOCK_EXIT_CODE}");
            seal(inner);
            std::process::exit(LIVE_DEADLOCK_EXIT_CODE);
        }
        DeadlockHandler::Callback(f) => f(witness),
    }
}

/// Seals the run (idempotent): peak-trace-bytes high-water mark, then
/// `on_finish` to every sink with the trace skeleton.
pub(crate) fn seal(inner: &Arc<TrackerInner>) {
    let st = {
        let mut st = inner.state.lock();
        if st.sealed {
            return;
        }
        st.sealed = true;
        inner
            .obs
            .counters()
            .record_peak_trace_bytes(st.trace.approx_event_bytes());
        st
    };
    inner.sink.finish(&st.trace);
}
