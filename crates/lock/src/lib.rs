//! `df-lock` — drop-in tracked locks for natively-scheduled programs,
//! with an online wait-for-graph deadlock detector and graceful
//! recovery.
//!
//! The rest of the workspace analyzes programs running inside the
//! serialized virtual runtime or behind `df-realthread`'s controller.
//! This crate is the front door for *real* programs on the *native* OS
//! scheduler: swap `std::sync::Mutex` → [`TrackedMutex`],
//! `std::sync::RwLock` → [`TrackedRwLock`], `std::thread::spawn` →
//! [`TrackedThread::spawn`], and
//!
//! * every acquisition/release/spawn flows into the existing
//!   [`df_events::EventSink`] machinery — attach a
//!   [`df_events::SpillSink`] and Phase I (`dfz analyze`) runs
//!   unchanged on the live execution's sealed trace, or attach a
//!   `RelationBuilder` and build the lock dependency relation online;
//! * an **online wait-for graph** (thread→waiting-on-lock edges added
//!   on contended acquires, lock→held-by-thread edges on completions)
//!   is checked for cycles incrementally — the instant a real deadlock
//!   forms, the configured [`DeadlockHandler`] fires with a
//!   [`DeadlockWitness`] naming the cycle's threads, locks and
//!   acquisition sites;
//! * robustness hardening converts hangs into diagnosable failures:
//!   [`TrackedMutex::try_lock_for`] turns a suspected deadlock into a
//!   recoverable `Err`, poisoned locks are recovered with release
//!   events still emitted, and [`Tracker::seal`] (also run by the
//!   [`DeadlockHandler::SealAndExit`] handler) makes the spill of a
//!   deadlocked run analyzable post-mortem.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use df_lock::{DeadlockHandler, Tracker, TrackerConfig, TrackedMutex};
//!
//! // A private tracker; drop-in code uses Tracker::install + ::new.
//! let witnesses = Arc::new(std::sync::Mutex::new(Vec::new()));
//! let seen = Arc::clone(&witnesses);
//! let tracker = Tracker::new(TrackerConfig::default().with_handler(
//!     DeadlockHandler::Callback(Arc::new(move |w| {
//!         seen.lock().unwrap().push(w.clone());
//!     })),
//! ));
//!
//! let account = Arc::new(TrackedMutex::with_tracker(&tracker, 100i64));
//! let a = Arc::clone(&account);
//! let t = tracker.spawn("audit", move || *a.lock().unwrap());
//! assert_eq!(t.join().unwrap(), 100);
//! assert!(witnesses.lock().unwrap().is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod condvar;
mod handler;
mod mutex;
mod rwlock;
mod thread;
mod tls;
mod tracker;
mod wfg;

pub use condvar::TrackedCondvar;
pub use handler::{DeadlockHandler, LIVE_DEADLOCK_EXIT_CODE};
pub use mutex::{TrackedMutex, TrackedMutexGuard};
pub use rwlock::{TrackedRwLock, TrackedRwLockReadGuard, TrackedRwLockWriteGuard};
pub use thread::{TrackedJoinHandle, TrackedThread};
pub use tracker::{Tracker, TrackerConfig};

// Witness types callers receive from handlers (and the mode vocabulary
// they speak), re-exported so a df-lock user does not need a direct
// df-runtime or df-events dependency.
pub use df_events::AcquireMode;
pub use df_runtime::{DeadlockWitness, Detector, WitnessComponent};
