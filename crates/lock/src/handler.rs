//! What to do the moment a real deadlock forms.

use std::fmt;
use std::sync::Arc;

use df_runtime::DeadlockWitness;

/// Process exit code used by [`DeadlockHandler::SealAndExit`].
///
/// This is `dfz`'s documented "live deadlock" code — kept numerically
/// equal to `df_cli::exit_code::LIVE_DEADLOCK` (asserted by a test) so
/// scripts can distinguish "the program deadlocked and the tracker shut
/// it down" from panics and harness failures.
pub const LIVE_DEADLOCK_EXIT_CODE: i32 = 5;

/// Policy the tracker invokes when its online wait-for graph closes a
/// cycle. Detection happens on the thread whose blocked acquisition
/// completed the cycle, *before* that thread parks on the native lock.
#[derive(Clone, Default)]
pub enum DeadlockHandler {
    /// Print the witness report to stderr (once per distinct lock set)
    /// and let the program continue. The deadlocked threads stay
    /// blocked unless they used [`crate::TrackedMutex::try_lock_for`],
    /// which converts the wait into a recoverable `Err`.
    #[default]
    Log,
    /// Print the witness report to stderr, seal the attached spill so
    /// the trace is analyzable post-mortem by `dfz analyze`, and
    /// terminate the process with [`LIVE_DEADLOCK_EXIT_CODE`].
    SealAndExit,
    /// Hand the witness to the caller. The callback runs on the
    /// detecting (about-to-block) thread and must not acquire tracked
    /// locks.
    Callback(Arc<dyn Fn(&DeadlockWitness) + Send + Sync>),
}

impl fmt::Debug for DeadlockHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockHandler::Log => f.write_str("Log"),
            DeadlockHandler::SealAndExit => f.write_str("SealAndExit"),
            DeadlockHandler::Callback(_) => f.write_str("Callback(..)"),
        }
    }
}
