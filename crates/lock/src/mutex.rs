//! A drop-in tracked `std::sync::Mutex`.

use std::sync::{Arc, LockResult, MutexGuard, PoisonError, TryLockError, TryLockResult};
use std::time::{Duration, Instant};

use df_events::{caller_site, Label, ObjId};

use crate::tracker::{self, Access, Tracker, TrackerInner};

/// A `std::sync::Mutex<T>` replacement whose acquisitions and releases
/// feed the DeadlockFuzzer event stream and the online wait-for-graph
/// detector. The API mirrors `std`: `lock` returns a [`LockResult`],
/// poisoning propagates, guards release on drop.
///
/// `new` uses the process-wide [`Tracker::global`] (install a
/// configured one with [`Tracker::install`]); [`TrackedMutex::with_tracker`]
/// pins a specific tracker, which is what tests use.
///
/// # Example
///
/// ```
/// use df_lock::{TrackedMutex, Tracker, TrackerConfig};
///
/// let tracker = Tracker::new(TrackerConfig::default());
/// let m = TrackedMutex::with_tracker(&tracker, 41);
/// *m.lock().unwrap() += 1;
/// assert_eq!(*m.lock().unwrap(), 42);
/// ```
pub struct TrackedMutex<T> {
    tracker: Arc<TrackerInner>,
    id: ObjId,
    data: std::sync::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex under the global tracker. The caller's
    /// source location becomes the lock's allocation site — the label
    /// witnesses and `dfz analyze` abstractions report.
    #[track_caller]
    pub fn new(data: T) -> Self {
        Self::with_tracker(Tracker::global(), data)
    }

    /// Creates a tracked mutex under `tracker`.
    #[track_caller]
    pub fn with_tracker(tracker: &Tracker, data: T) -> Self {
        let inner = Arc::clone(tracker.inner());
        let id = tracker::register_lock(&inner, caller_site());
        TrackedMutex {
            tracker: inner,
            id,
            data: std::sync::Mutex::new(data),
        }
    }

    /// The lock's object id in the tracker's object table.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Whether the mutex is poisoned (a holder panicked).
    pub fn is_poisoned(&self) -> bool {
        self.data.is_poisoned()
    }

    /// Acquires the mutex, blocking like `std::sync::Mutex::lock`.
    ///
    /// A contended acquisition registers a wait edge in the wait-for
    /// graph first; if that edge closes a cycle the configured
    /// [`crate::DeadlockHandler`] fires *before* this thread parks. A
    /// poisoned mutex is reported as `Err` exactly like `std`, with the
    /// guard recoverable via [`PoisonError::into_inner`] (the recovery
    /// is counted and release events still flow).
    #[track_caller]
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_lock() {
            Ok(g) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                Ok(self.guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                tracker::note_poison_recovered(&self.tracker);
                Err(PoisonError::new(self.guard(p.into_inner(), site)))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::begin_wait(&self.tracker, self.id, site, Access::Exclusive);
                let (g, poisoned) = match self.data.lock() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                };
                tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                if poisoned {
                    tracker::note_poison_recovered(&self.tracker);
                    Err(PoisonError::new(self.guard(g, site)))
                } else {
                    Ok(self.guard(g, site))
                }
            }
        }
    }

    /// Attempts the mutex without blocking, like
    /// `std::sync::Mutex::try_lock`. Both outcomes flow into the event
    /// stream as `TryAcquire { acquired }` — a try never blocks, so
    /// Phase I records no blockable dependency edge for it.
    #[track_caller]
    pub fn try_lock(&self) -> TryLockResult<TrackedMutexGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_lock() {
            Ok(g) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, true);
                Ok(self.guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, true);
                tracker::note_poison_recovered(&self.tracker);
                Err(TryLockError::Poisoned(PoisonError::new(
                    self.guard(p.into_inner(), site),
                )))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, false);
                Err(TryLockError::WouldBlock)
            }
        }
    }

    /// Acquires the mutex, giving up after `timeout` — the robustness
    /// escape hatch that converts a suspected deadlock into a
    /// recoverable `Err(TryLockError::WouldBlock)` (counted in the
    /// `lock_timeouts` metric). Detection still fires the instant the
    /// wait edge closes a cycle, so a timed-out thread has already had
    /// its deadlock reported by the time it recovers.
    #[track_caller]
    pub fn try_lock_for(&self, timeout: Duration) -> TryLockResult<TrackedMutexGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_lock() {
            Ok(g) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                return Ok(self.guard(g, site));
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                tracker::note_poison_recovered(&self.tracker);
                return Err(TryLockError::Poisoned(PoisonError::new(
                    self.guard(p.into_inner(), site),
                )));
            }
            Err(TryLockError::WouldBlock) => {}
        }
        tracker::begin_wait(&self.tracker, self.id, site, Access::Exclusive);
        let deadline = Instant::now() + timeout;
        loop {
            match self.data.try_lock() {
                Ok(g) => {
                    tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                    return Ok(self.guard(g, site));
                }
                Err(TryLockError::Poisoned(p)) => {
                    tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                    tracker::note_poison_recovered(&self.tracker);
                    return Err(TryLockError::Poisoned(PoisonError::new(
                        self.guard(p.into_inner(), site),
                    )));
                }
                Err(TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        tracker::wait_timed_out(&self.tracker, self.id);
                        return Err(TryLockError::WouldBlock);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    pub(crate) fn guard<'a>(
        &'a self,
        data: MutexGuard<'a, T>,
        site: Label,
    ) -> TrackedMutexGuard<'a, T> {
        TrackedMutexGuard {
            lock: self,
            data: Some(data),
            site,
        }
    }

    pub(crate) fn tracker_inner(&self) -> &Arc<TrackerInner> {
        &self.tracker
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("id", &self.id)
            .field("data", &self.data)
            .finish()
    }
}

/// RAII guard of a [`TrackedMutex`]; releases (and emits the release
/// event) on drop, including during panic unwinding.
pub struct TrackedMutexGuard<'a, T> {
    lock: &'a TrackedMutex<T>,
    data: Option<MutexGuard<'a, T>>,
    site: Label,
}

impl<'a, T> TrackedMutexGuard<'a, T> {
    /// Splits the guard for a condvar wait: hands the native guard back
    /// (so `std::sync::Condvar::wait` can consume it) together with the
    /// lock it belongs to, *without* running the drop-time release —
    /// the condvar path does its own release bookkeeping and must not
    /// emit a `Release` event.
    pub(crate) fn into_parts(mut self) -> (&'a TrackedMutex<T>, MutexGuard<'a, T>) {
        let data = self.data.take().expect("guard live until drop");
        let lock = self.lock;
        std::mem::forget(self);
        (lock, data)
    }
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Registry release strictly before the native unlock: the
        // registry must never claim a hold another thread could
        // already have re-acquired.
        tracker::release(&self.lock.tracker, self.lock.id, self.site);
        self.data.take();
    }
}
