//! A drop-in tracked `std::sync::Condvar`.

use std::sync::{Arc, LockResult, PoisonError};

use df_events::{caller_site, ObjId};

use crate::mutex::TrackedMutexGuard;
use crate::tracker::{self, Tracker, TrackerInner};

/// A `std::sync::Condvar` replacement that feeds the event stream and
/// keeps the online wait-for graph truthful across waits.
///
/// A wait runs the spurious-wakeup-safe native protocol — the lock is
/// given up atomically, the thread parks, and the lock is reacquired
/// before `wait` returns — while the tracker mirrors each step:
///
/// * the `CondWait` event marks the communication edge (condvar, lock,
///   site) for `dfz analyze`;
/// * the registry drops the write hold *before* parking, so a producer
///   taking the lock meanwhile sees it free — no false self-cycle;
/// * the eventual-reacquire wait edge stays registered for the whole
///   park, so a cycle running through a parked waiter (its awaited
///   lock held by a thread that is itself blocked on something the
///   waiter holds) is detected by whichever thread closes it;
/// * the reacquisition is restored silently, matching the virtual
///   runtime's `WaitReacquire` — the original `Acquire` already
///   carries the lock dependency.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use df_lock::{TrackedCondvar, TrackedMutex, Tracker, TrackerConfig};
///
/// let tracker = Tracker::new(TrackerConfig::default());
/// let ready = Arc::new((
///     TrackedMutex::with_tracker(&tracker, false),
///     TrackedCondvar::with_tracker(&tracker),
/// ));
/// let pair = Arc::clone(&ready);
/// let t = tracker.spawn("producer", move || {
///     *pair.0.lock().unwrap() = true;
///     pair.1.notify_one();
/// });
/// let (lock, cv) = &*ready;
/// let mut done = lock.lock().unwrap();
/// while !*done {
///     done = cv.wait(done).unwrap();
/// }
/// t.join().unwrap();
/// ```
pub struct TrackedCondvar {
    tracker: Arc<TrackerInner>,
    id: ObjId,
    cv: std::sync::Condvar,
}

impl TrackedCondvar {
    /// Creates a tracked condvar under the global tracker; the caller's
    /// source location becomes the allocation site.
    #[track_caller]
    pub fn new() -> Self {
        Self::with_tracker(Tracker::global())
    }

    /// Creates a tracked condvar under `tracker`.
    #[track_caller]
    pub fn with_tracker(tracker: &Tracker) -> Self {
        let inner = Arc::clone(tracker.inner());
        let id = tracker::register_condvar(&inner, caller_site());
        TrackedCondvar {
            tracker: inner,
            id,
            cv: std::sync::Condvar::new(),
        }
    }

    /// The condvar's object id in the tracker's object table.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Blocks until notified (or a spurious wakeup), releasing and
    /// reacquiring the guard's mutex like `std::sync::Condvar::wait`.
    /// Callers must re-check their predicate in a loop, exactly as with
    /// `std`.
    #[track_caller]
    pub fn wait<'a, T>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
    ) -> LockResult<TrackedMutexGuard<'a, T>> {
        let site = caller_site();
        let (lock, native) = guard.into_parts();
        debug_assert!(
            Arc::ptr_eq(&self.tracker, lock.tracker_inner()),
            "condvar and mutex must share a tracker"
        );
        tracker::cond_wait_begin(&self.tracker, self.id, lock.id(), site);
        let (native, poisoned) = match self.cv.wait(native) {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        tracker::cond_wait_end(&self.tracker, lock.id(), site);
        let g = lock.guard(native, site);
        if poisoned {
            tracker::note_poison_recovered(&self.tracker);
            Err(PoisonError::new(g))
        } else {
            Ok(g)
        }
    }

    /// Blocks while `condition` returns `true`, like
    /// `std::sync::Condvar::wait_while` — the re-check loop is built
    /// in, so spurious wakeups never leak to the caller.
    #[track_caller]
    pub fn wait_while<'a, T, F>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<TrackedMutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        let mut guard = guard;
        let mut poisoned = false;
        while condition(&mut *guard) {
            guard = match self.wait(guard) {
                Ok(g) => g,
                Err(p) => {
                    poisoned = true;
                    p.into_inner()
                }
            };
        }
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Wakes one parked waiter, like `std::sync::Condvar::notify_one`.
    /// The `CondNotify` event lands in the stream before the wakeup, so
    /// the notify is ordered before the waiter's reacquisition.
    #[track_caller]
    pub fn notify_one(&self) {
        tracker::cond_notify(&self.tracker, self.id, caller_site(), false);
        self.cv.notify_one();
    }

    /// Wakes all parked waiters, like `std::sync::Condvar::notify_all`.
    #[track_caller]
    pub fn notify_all(&self) {
        tracker::cond_notify(&self.tracker, self.id, caller_site(), true);
        self.cv.notify_all();
    }
}

impl Default for TrackedCondvar {
    #[track_caller]
    fn default() -> Self {
        TrackedCondvar::new()
    }
}

impl std::fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedCondvar")
            .field("id", &self.id)
            .finish()
    }
}
