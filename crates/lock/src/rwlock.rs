//! A drop-in tracked `std::sync::RwLock`.

use std::sync::{
    Arc, LockResult, PoisonError, RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult,
};
use std::time::{Duration, Instant};

use df_events::{caller_site, Label, ObjId};

use crate::tracker::{self, Access, Tracker, TrackerInner};

/// A `std::sync::RwLock<T>` replacement feeding the event stream and
/// the online detector. Readers register as *shared* holders, so the
/// wait-for graph walks every reader of a contended write — a writer
/// blocked on a reader that is itself blocked forms a detectable cycle.
///
/// # Example
///
/// ```
/// use df_lock::{TrackedRwLock, Tracker, TrackerConfig};
///
/// let tracker = Tracker::new(TrackerConfig::default());
/// let l = TrackedRwLock::with_tracker(&tracker, 1);
/// assert_eq!(*l.read().unwrap(), 1);
/// *l.write().unwrap() += 1;
/// assert_eq!(*l.read().unwrap(), 2);
/// ```
pub struct TrackedRwLock<T> {
    tracker: Arc<TrackerInner>,
    id: ObjId,
    data: std::sync::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked rwlock under the global tracker; the caller's
    /// source location becomes the allocation site.
    #[track_caller]
    pub fn new(data: T) -> Self {
        Self::with_tracker(Tracker::global(), data)
    }

    /// Creates a tracked rwlock under `tracker`.
    #[track_caller]
    pub fn with_tracker(tracker: &Tracker, data: T) -> Self {
        let inner = Arc::clone(tracker.inner());
        let id = tracker::register_lock(&inner, caller_site());
        TrackedRwLock {
            tracker: inner,
            id,
            data: std::sync::RwLock::new(data),
        }
    }

    /// The lock's object id in the tracker's object table.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Whether the rwlock is poisoned (a writer panicked).
    pub fn is_poisoned(&self) -> bool {
        self.data.is_poisoned()
    }

    /// Acquires shared read access, like `std::sync::RwLock::read`.
    #[track_caller]
    pub fn read(&self) -> LockResult<TrackedRwLockReadGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_read() {
            Ok(g) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Shared);
                Ok(self.read_guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Shared);
                tracker::note_poison_recovered(&self.tracker);
                Err(PoisonError::new(self.read_guard(p.into_inner(), site)))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::begin_wait(&self.tracker, self.id, site, Access::Shared);
                let (g, poisoned) = match self.data.read() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                };
                tracker::acquired_contended(&self.tracker, self.id, site, Access::Shared);
                if poisoned {
                    tracker::note_poison_recovered(&self.tracker);
                    Err(PoisonError::new(self.read_guard(g, site)))
                } else {
                    Ok(self.read_guard(g, site))
                }
            }
        }
    }

    /// Acquires exclusive write access, like `std::sync::RwLock::write`.
    #[track_caller]
    pub fn write(&self) -> LockResult<TrackedRwLockWriteGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_write() {
            Ok(g) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                Ok(self.write_guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                tracker::note_poison_recovered(&self.tracker);
                Err(PoisonError::new(self.write_guard(p.into_inner(), site)))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::begin_wait(&self.tracker, self.id, site, Access::Exclusive);
                let (g, poisoned) = match self.data.write() {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                };
                tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                if poisoned {
                    tracker::note_poison_recovered(&self.tracker);
                    Err(PoisonError::new(self.write_guard(g, site)))
                } else {
                    Ok(self.write_guard(g, site))
                }
            }
        }
    }

    /// Attempts shared read access without blocking. Both outcomes are
    /// recorded as shared `TryAcquire { acquired }` events.
    #[track_caller]
    pub fn try_read(&self) -> TryLockResult<TrackedRwLockReadGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_read() {
            Ok(g) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Shared, true);
                Ok(self.read_guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Shared, true);
                tracker::note_poison_recovered(&self.tracker);
                Err(TryLockError::Poisoned(PoisonError::new(
                    self.read_guard(p.into_inner(), site),
                )))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Shared, false);
                Err(TryLockError::WouldBlock)
            }
        }
    }

    /// Attempts exclusive write access without blocking. Both outcomes
    /// are recorded as exclusive `TryAcquire { acquired }` events.
    #[track_caller]
    pub fn try_write(&self) -> TryLockResult<TrackedRwLockWriteGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_write() {
            Ok(g) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, true);
                Ok(self.write_guard(g, site))
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, true);
                tracker::note_poison_recovered(&self.tracker);
                Err(TryLockError::Poisoned(PoisonError::new(
                    self.write_guard(p.into_inner(), site),
                )))
            }
            Err(TryLockError::WouldBlock) => {
                tracker::try_acquired(&self.tracker, self.id, site, Access::Exclusive, false);
                Err(TryLockError::WouldBlock)
            }
        }
    }

    /// Acquires write access, giving up after `timeout` (the same
    /// recoverable-deadlock escape hatch as
    /// [`crate::TrackedMutex::try_lock_for`]).
    #[track_caller]
    pub fn try_write_for(
        &self,
        timeout: Duration,
    ) -> TryLockResult<TrackedRwLockWriteGuard<'_, T>> {
        let site = caller_site();
        match self.data.try_write() {
            Ok(g) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                return Ok(self.write_guard(g, site));
            }
            Err(TryLockError::Poisoned(p)) => {
                tracker::acquired_uncontended(&self.tracker, self.id, site, Access::Exclusive);
                tracker::note_poison_recovered(&self.tracker);
                return Err(TryLockError::Poisoned(PoisonError::new(
                    self.write_guard(p.into_inner(), site),
                )));
            }
            Err(TryLockError::WouldBlock) => {}
        }
        tracker::begin_wait(&self.tracker, self.id, site, Access::Exclusive);
        let deadline = Instant::now() + timeout;
        loop {
            match self.data.try_write() {
                Ok(g) => {
                    tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                    return Ok(self.write_guard(g, site));
                }
                Err(TryLockError::Poisoned(p)) => {
                    tracker::acquired_contended(&self.tracker, self.id, site, Access::Exclusive);
                    tracker::note_poison_recovered(&self.tracker);
                    return Err(TryLockError::Poisoned(PoisonError::new(
                        self.write_guard(p.into_inner(), site),
                    )));
                }
                Err(TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        tracker::wait_timed_out(&self.tracker, self.id);
                        return Err(TryLockError::WouldBlock);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    fn read_guard<'a>(
        &'a self,
        data: RwLockReadGuard<'a, T>,
        site: Label,
    ) -> TrackedRwLockReadGuard<'a, T> {
        TrackedRwLockReadGuard {
            lock: self,
            data: Some(data),
            site,
        }
    }

    fn write_guard<'a>(
        &'a self,
        data: RwLockWriteGuard<'a, T>,
        site: Label,
    ) -> TrackedRwLockWriteGuard<'a, T> {
        TrackedRwLockWriteGuard {
            lock: self,
            data: Some(data),
            site,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("id", &self.id)
            .field("data", &self.data)
            .finish()
    }
}

/// Shared-access RAII guard of a [`TrackedRwLock`].
pub struct TrackedRwLockReadGuard<'a, T> {
    lock: &'a TrackedRwLock<T>,
    data: Option<RwLockReadGuard<'a, T>>,
    site: Label,
}

impl<T> std::ops::Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard live until drop")
    }
}

impl<T> Drop for TrackedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(&self.lock.tracker, self.lock.id, self.site);
        self.data.take();
    }
}

/// Exclusive-access RAII guard of a [`TrackedRwLock`].
pub struct TrackedRwLockWriteGuard<'a, T> {
    lock: &'a TrackedRwLock<T>,
    data: Option<RwLockWriteGuard<'a, T>>,
    site: Label,
}

impl<T> std::ops::Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for TrackedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for TrackedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(&self.lock.tracker, self.lock.id, self.site);
        self.data.take();
    }
}
