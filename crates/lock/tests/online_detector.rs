//! Deterministic-interleaving suite for the online wait-for-graph
//! detector, plus a property test tying the live detector back to
//! Phase I: every witness the WFG reports on a real execution must
//! correspond to an iGoodlock cycle in the relation built from that
//! same execution's event stream.
//!
//! Determinism: barriers force every thread in a would-be cycle to take
//! its first lock before any thread attempts its second, so cycle
//! formation does not depend on the OS scheduler; `try_lock_for`
//! timeouts then dissolve the deadlock so the tests terminate.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use df_events::{Event, EventKind, EventSink, ObjId, SinkHandle};
use df_igoodlock::{igoodlock, IGoodlockOptions, RelationBuilder};
use df_lock::{
    AcquireMode, DeadlockHandler, DeadlockWitness, TrackedCondvar, TrackedMutex, TrackedRwLock,
    Tracker, TrackerConfig,
};
use proptest::prelude::*;

/// A handler that collects every witness for later assertions.
fn collector() -> (Arc<Mutex<Vec<DeadlockWitness>>>, DeadlockHandler) {
    let witnesses = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&witnesses);
    let handler = DeadlockHandler::Callback(Arc::new(move |w: &DeadlockWitness| {
        sink.lock().unwrap().push(w.clone());
    }));
    (witnesses, handler)
}

fn sorted_locks(witness: &DeadlockWitness) -> Vec<ObjId> {
    let mut locks = witness.locks();
    locks.sort();
    locks
}

/// Witness components come out in cycle order: each thread waits for a
/// lock the *next* component's thread holds.
fn assert_cyclic(witness: &DeadlockWitness) {
    let n = witness.len();
    for (i, c) in witness.components.iter().enumerate() {
        let next = &witness.components[(i + 1) % n];
        assert!(
            next.holding.contains(&c.waiting_for),
            "component {i} waits for {:?} but successor holds only {:?}",
            c.waiting_for,
            next.holding
        );
    }
}

/// Threads that respect a global lock order can contend heavily without
/// ever deadlocking; the detector must stay silent.
#[test]
fn hierarchical_order_produces_no_false_positives() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let a = Arc::new(TrackedMutex::with_tracker(&tracker, 0u64));
    let b = Arc::new(TrackedMutex::with_tracker(&tracker, 0u64));
    let c = Arc::new(TrackedMutex::with_tracker(&tracker, 0u64));

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let (a, b, c) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&c));
            tracker.spawn(&format!("ordered-{i}"), move || {
                for _ in 0..50 {
                    let ga = a.lock().unwrap();
                    let gb = b.lock().unwrap();
                    let mut gc = c.lock().unwrap();
                    *gc += 1;
                    drop((gc, gb, ga));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        witnesses.lock().unwrap().is_empty(),
        "hierarchical locking must never produce a witness"
    );
    let snap = tracker.obs().counters().snapshot();
    assert_eq!(snap.wfg_cycles_detected, 0);
    assert_eq!(snap.lock_timeouts, 0);
}

/// The classic two-lock inversion, forced by a barrier: detection is
/// guaranteed, fires exactly once (dedup by lock set), and the witness
/// names both threads and both locks in cycle order.
#[test]
fn two_lock_cycle_is_detected_exactly_once() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let a = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let b = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let expected = {
        let mut ids = vec![a.id(), b.id()];
        ids.sort();
        ids
    };

    let barrier = Arc::new(Barrier::new(2));
    let (a1, b1, bar) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let t1 = tracker.spawn("inverted a->b", move || {
        let first = a1.lock().unwrap();
        bar.wait();
        let _ = b1.try_lock_for(Duration::from_secs(2));
        drop(first);
    });
    let (a2, b2, bar) = (Arc::clone(&a), Arc::clone(&b), barrier);
    let t2 = tracker.spawn("inverted b->a", move || {
        let first = b2.lock().unwrap();
        bar.wait();
        let _ = a2.try_lock_for(Duration::from_secs(2));
        drop(first);
    });
    t1.join().unwrap();
    t2.join().unwrap();

    let seen = witnesses.lock().unwrap();
    assert_eq!(seen.len(), 1, "one cycle, reported once: {seen:?}");
    let w = &seen[0];
    assert_eq!(w.len(), 2);
    assert_eq!(sorted_locks(w), expected);
    assert_cyclic(w);
    for c in &w.components {
        assert!(
            c.thread_name
                .as_deref()
                .is_some_and(|n| n.starts_with("inverted")),
            "witness should carry thread names: {c:?}"
        );
        assert!(!c.context.is_empty(), "witness should carry acquire sites");
    }

    let snap = tracker.obs().counters().snapshot();
    assert_eq!(snap.wfg_cycles_detected, 1);
    assert!(snap.wfg_edges >= 2, "both waits registered: {snap:?}");
    assert!(
        snap.lock_timeouts >= 1,
        "at least the first thread to give up times out: {snap:?}"
    );
}

/// Three dining philosophers: the cycle only closes when the *last*
/// thread registers its wait, and the witness must walk all three.
#[test]
fn three_lock_philosopher_cycle_is_detected() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let forks: Vec<_> = (0..3)
        .map(|_| Arc::new(TrackedMutex::with_tracker(&tracker, ())))
        .collect();
    let expected = {
        let mut ids: Vec<_> = forks.iter().map(|f| f.id()).collect();
        ids.sort();
        ids
    };

    let barrier = Arc::new(Barrier::new(3));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let left = Arc::clone(&forks[i]);
            let right = Arc::clone(&forks[(i + 1) % 3]);
            let bar = Arc::clone(&barrier);
            tracker.spawn(&format!("philosopher-{i}"), move || {
                let held = left.lock().unwrap();
                bar.wait();
                let _ = right.try_lock_for(Duration::from_secs(2));
                drop(held);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let seen = witnesses.lock().unwrap();
    assert_eq!(seen.len(), 1, "one 3-cycle, reported once: {seen:?}");
    let w = &seen[0];
    assert_eq!(w.len(), 3);
    assert_eq!(sorted_locks(w), expected);
    assert_cyclic(w);
    assert_eq!(tracker.obs().counters().snapshot().wfg_cycles_detected, 1);
}

/// A writer blocked on a lock held *shared* still closes a cycle: the
/// graph walks every reader of a contended rwlock.
#[test]
fn rwlock_reader_participates_in_cycle() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let a = Arc::new(TrackedRwLock::with_tracker(&tracker, ()));
    let b = Arc::new(TrackedRwLock::with_tracker(&tracker, ()));
    let expected = {
        let mut ids = vec![a.id(), b.id()];
        ids.sort();
        ids
    };

    let barrier = Arc::new(Barrier::new(2));
    let (a1, b1, bar) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let t1 = tracker.spawn("reader of a", move || {
        let held = a1.read().unwrap();
        bar.wait();
        let _ = b1.try_write_for(Duration::from_secs(2));
        drop(held);
    });
    let (a2, b2, bar) = (Arc::clone(&a), Arc::clone(&b), barrier);
    let t2 = tracker.spawn("writer of b", move || {
        let held = b2.write().unwrap();
        bar.wait();
        let _ = a2.try_write_for(Duration::from_secs(2));
        drop(held);
    });
    t1.join().unwrap();
    t2.join().unwrap();

    let seen = witnesses.lock().unwrap();
    assert_eq!(seen.len(), 1, "reader/writer inversion: {seen:?}");
    assert_eq!(sorted_locks(&seen[0]), expected);
    assert_cyclic(&seen[0]);
}

/// Regression: a reader-heavy jam — one stuck writer, several readers
/// each closing a cycle through it via a *different* held lock — is one
/// deadlock, not one report per reader. The dedup key is the union of
/// held and awaited locks across the cycle, which is identical for
/// every reader's view of the jam; a key of awaited locks alone would
/// report it once per reader.
#[test]
fn reader_heavy_cycle_is_reported_once_per_lock_set() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let shared = Arc::new(TrackedRwLock::with_tracker(&tracker, ()));
    let b1 = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let b2 = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let all_locks = [shared.id(), b1.id(), b2.id()];

    let barrier = Arc::new(Barrier::new(3));
    let (s0, b1w, b2w, bar) = (
        Arc::clone(&shared),
        Arc::clone(&b1),
        Arc::clone(&b2),
        Arc::clone(&barrier),
    );
    let writer = tracker.spawn("stuck writer", move || {
        let g1 = b1w.lock().unwrap();
        let g2 = b2w.lock().unwrap();
        bar.wait();
        // Registers the write-wait on `shared` first; the readers sleep
        // so both of their cycle-closing edges land afterwards and the
        // second one exercises the dedup path.
        let _ = s0.try_write_for(Duration::from_secs(2));
        drop((g2, g1));
    });
    let readers: Vec<_> = [Arc::clone(&b1), Arc::clone(&b2)]
        .into_iter()
        .enumerate()
        .map(|(i, blocker)| {
            let s = Arc::clone(&shared);
            let bar = Arc::clone(&barrier);
            tracker.spawn(&format!("reader-{i}"), move || {
                let held = s.read().unwrap();
                bar.wait();
                std::thread::sleep(Duration::from_millis(200));
                let _ = blocker.try_lock_for(Duration::from_secs(2));
                drop(held);
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    let seen = witnesses.lock().unwrap();
    assert_eq!(
        seen.len(),
        1,
        "one jammed lock set, one witness — not one per reader: {seen:?}"
    );
    let w = &seen[0];
    assert_eq!(w.len(), 2, "each view of the jam is a two-thread cycle");
    assert_cyclic(w);
    for lock in sorted_locks(w) {
        assert!(all_locks.contains(&lock));
    }
    let reader = w
        .components
        .iter()
        .find(|c| {
            c.thread_name
                .as_deref()
                .is_some_and(|n| n.starts_with("reader"))
        })
        .expect("a reader is in the cycle");
    assert_eq!(reader.holding_modes, vec![AcquireMode::Shared]);
    assert_eq!(reader.waiting_mode, AcquireMode::Exclusive);
    let writer_side = w
        .components
        .iter()
        .find(|c| c.thread_name.as_deref() == Some("stuck writer"))
        .expect("the writer is in the cycle");
    assert_eq!(writer_side.waiting_for, shared.id());
    assert_eq!(writer_side.waiting_mode, AcquireMode::Exclusive);
    assert_eq!(tracker.obs().counters().snapshot().wfg_cycles_detected, 1);
}

/// Re-acquiring a held (non-reentrant) std mutex is a self-deadlock;
/// the graph includes self-loops, so the witness is a 1-cycle and the
/// timeout converts the hang into a recoverable `Err`.
#[test]
fn self_deadlock_is_a_one_cycle() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let m = TrackedMutex::with_tracker(&tracker, ());

    let held = m.lock().unwrap();
    let again = m.try_lock_for(Duration::from_millis(100));
    assert!(again.is_err(), "self-acquire must time out, not succeed");
    drop(held);

    let seen = witnesses.lock().unwrap();
    assert_eq!(seen.len(), 1, "self-loop is a reportable cycle: {seen:?}");
    let w = &seen[0];
    assert_eq!(w.len(), 1);
    assert_eq!(w.components[0].waiting_for, m.id());
    assert!(w.components[0].holding.contains(&m.id()));
    let snap = tracker.obs().counters().snapshot();
    assert_eq!(snap.wfg_cycles_detected, 1);
    assert_eq!(snap.lock_timeouts, 1);
}

/// In-memory sink capturing the raw event stream, so tests can assert
/// on exactly what a live execution emits.
#[derive(Default)]
struct CaptureSink {
    events: Vec<Event>,
}

impl EventSink for CaptureSink {
    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A panicking holder poisons the mutex; the next locker recovers via
/// `PoisonError::into_inner`, the recovery is counted, and the event
/// stream stays balanced — every acquire has its release, even the one
/// emitted mid-unwind.
#[test]
fn poisoned_mutex_recovers_with_balanced_events() {
    let capture = Arc::new(Mutex::new(CaptureSink::default()));
    let dyn_sink: Arc<Mutex<dyn EventSink>> = Arc::clone(&capture) as _;
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(
        TrackerConfig::default()
            .with_handler(handler)
            .with_sink(SinkHandle::single(dyn_sink)),
    );
    let m = Arc::new(TrackedMutex::with_tracker(&tracker, 7i64));

    let poisoner = Arc::clone(&m);
    let t = tracker.spawn("poisoner", move || {
        let _held = poisoner.lock().unwrap();
        panic!("poison while holding");
    });
    assert!(t.join().is_err(), "the child really panicked");
    assert!(m.is_poisoned());

    let Err(recovered) = m.lock() else {
        panic!("poisoned lock must report Err");
    };
    let guard = recovered.into_inner();
    assert_eq!(*guard, 7, "data survives the poisoned holder");
    drop(guard);

    assert!(witnesses.lock().unwrap().is_empty());
    let snap = tracker.obs().counters().snapshot();
    assert_eq!(snap.poisoned_recovered, 1);

    let events = &capture.lock().unwrap().events;
    let acquires = events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Acquire { lock, .. } if *lock == m.id()))
        .count();
    let releases = events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Release { lock, .. } if *lock == m.id()))
        .count();
    assert_eq!(acquires, 2, "panicking + recovering acquisitions");
    assert_eq!(
        acquires, releases,
        "unwind and recovery both emit their releases"
    );
}

/// A producer/consumer handshake over a tracked condvar is deadlock
/// free, and the event stream records the communication: a `CondWait`
/// naming both the condvar and its released lock, the `CondNotify`,
/// and balanced acquire/release pairs (the wait's release and
/// reacquisition are implied by `CondWait`, exactly as in the virtual
/// runtime, so no extra `Acquire`/`Release` events appear).
#[test]
fn condvar_handshake_is_quiet_with_balanced_events() {
    let capture = Arc::new(Mutex::new(CaptureSink::default()));
    let dyn_sink: Arc<Mutex<dyn EventSink>> = Arc::clone(&capture) as _;
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(
        TrackerConfig::default()
            .with_handler(handler)
            .with_sink(SinkHandle::single(dyn_sink)),
    );
    let state = Arc::new((
        TrackedMutex::with_tracker(&tracker, 0usize),
        TrackedCondvar::with_tracker(&tracker),
    ));

    // The consumer holds the lock across the barrier, so the producer's
    // first acquisition can only succeed once the consumer has parked —
    // at least one real wait/notify round is guaranteed.
    let barrier = Arc::new(Barrier::new(2));
    let (producer_state, bar) = (Arc::clone(&state), Arc::clone(&barrier));
    let producer = tracker.spawn("producer", move || {
        bar.wait();
        for _ in 0..3 {
            *producer_state.0.lock().unwrap() += 1;
            producer_state.1.notify_one();
        }
    });
    let (queue, cv) = &*state;
    let held = queue.lock().unwrap();
    barrier.wait();
    let produced = cv.wait_while(held, |produced| *produced < 3).unwrap();
    assert_eq!(*produced, 3);
    drop(produced);
    producer.join().unwrap();

    assert!(
        witnesses.lock().unwrap().is_empty(),
        "a plain handshake must not be flagged"
    );
    let events = &capture.lock().unwrap().events;
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::CondWait { condvar, lock, .. }
                if *condvar == cv.id() && *lock == queue.id()
        )),
        "the wait names both the condvar and the released lock"
    );
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::CondNotify { condvar, all: false, .. } if *condvar == cv.id()
        )),
        "notify_one lands in the stream"
    );
    let acquires = events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Acquire { lock, .. } if *lock == queue.id()))
        .count();
    let releases = events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Release { lock, .. } if *lock == queue.id()))
        .count();
    assert_eq!(acquires, releases, "condvar waits keep the stream balanced");
}

/// A thread parked in a condvar wait still holds its *outer* locks, and
/// its pending reacquisition is a real wait-for edge: when the only
/// thread that could deliver the notification blocks on one of the
/// waiter's outer locks, that is a deadlock, and the detector walks it
/// straight through the parked thread.
#[test]
fn parked_cond_waiter_participates_in_cycle() {
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(TrackerConfig::default().with_handler(handler));
    let outer = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let state = Arc::new((
        TrackedMutex::with_tracker(&tracker, false),
        TrackedCondvar::with_tracker(&tracker),
    ));
    let expected = {
        let mut ids = vec![outer.id(), state.0.id()];
        ids.sort();
        ids
    };

    let barrier = Arc::new(Barrier::new(2));
    let (o1, s1, bar) = (Arc::clone(&outer), Arc::clone(&state), Arc::clone(&barrier));
    let waiter = tracker.spawn("parked waiter", move || {
        let held = o1.lock().unwrap();
        let inner = s1.0.lock().unwrap();
        bar.wait();
        // Parks holding `outer`; the reacquire edge on the inner lock
        // stays registered for the whole wait.
        let inner = s1.1.wait_while(inner, |done| !*done).unwrap();
        drop(inner);
        drop(held);
    });
    let (o2, s2) = (Arc::clone(&outer), Arc::clone(&state));
    let notifier = tracker.spawn("blocked notifier", move || {
        barrier.wait();
        // Succeeds only once the waiter has parked and given the inner
        // lock up.
        let mut inner = s2.0.lock().unwrap();
        // Deadlock: the waiter cannot run again until this thread frees
        // the inner lock, and this thread wants the waiter's `outer`.
        let jammed = o2.try_lock_for(Duration::from_secs(2));
        assert!(jammed.is_err(), "the cycle must hold until the timeout");
        drop(jammed);
        *inner = true;
        s2.1.notify_one();
        drop(inner);
    });
    waiter.join().unwrap();
    notifier.join().unwrap();

    let seen = witnesses.lock().unwrap();
    assert_eq!(seen.len(), 1, "parked-waiter cycle: {seen:?}");
    let w = &seen[0];
    assert_eq!(w.len(), 2);
    assert_eq!(sorted_locks(w), expected);
    assert_cyclic(w);
    let parked = w
        .components
        .iter()
        .find(|c| c.thread_name.as_deref() == Some("parked waiter"))
        .expect("the parked thread is a witness component");
    assert_eq!(parked.waiting_for, state.0.id());
    assert!(parked.holding.contains(&outer.id()));
    assert_eq!(tracker.obs().counters().snapshot().wfg_cycles_detected, 1);
}

/// The crate's documented exit code and the CLI's taxonomy must agree —
/// CI asserts on the numeric value.
#[test]
fn live_deadlock_exit_code_matches_cli_taxonomy() {
    assert_eq!(
        df_lock::LIVE_DEADLOCK_EXIT_CODE,
        df_cli::exit_code::LIVE_DEADLOCK
    );
}

/// Per-thread lock order: acquire `first`, then (under a barrier, so
/// all first-acquisitions happen before any second) try `second`.
fn run_contended(specs: &[(usize, usize)]) -> (Vec<DeadlockWitness>, RelationBuilder) {
    let builder = Arc::new(Mutex::new(RelationBuilder::new()));
    let dyn_sink: Arc<Mutex<dyn EventSink>> = Arc::clone(&builder) as _;
    let (witnesses, handler) = collector();
    let tracker = Tracker::new(
        TrackerConfig::default()
            .with_handler(handler)
            .with_sink(SinkHandle::single(dyn_sink)),
    );
    let locks: Vec<_> = (0..3)
        .map(|_| Arc::new(TrackedMutex::with_tracker(&tracker, ())))
        .collect();

    // Round 1 — sequential: record every thread's nesting order without
    // contention, so the relation holds the dependencies Phase I needs
    // (a blocked acquire emits no Acquire event).
    for (i, &(first, second)) in specs.iter().enumerate() {
        let (f, s) = (Arc::clone(&locks[first]), Arc::clone(&locks[second]));
        tracker
            .spawn(&format!("warmup-{i}"), move || {
                let outer = f.lock().unwrap();
                let inner = s.lock().unwrap();
                drop((inner, outer));
            })
            .join()
            .unwrap();
    }

    // Round 2 — contended: hold `first` across the barrier, then try
    // `second`. Timeouts keep the run terminating whether or not the
    // generated orders can deadlock.
    let barrier = Arc::new(Barrier::new(specs.len()));
    let handles: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, &(first, second))| {
            let (f, s) = (Arc::clone(&locks[first]), Arc::clone(&locks[second]));
            let bar = Arc::clone(&barrier);
            tracker.spawn(&format!("contender-{i}"), move || {
                let held = f.try_lock_for(Duration::from_millis(500)).ok();
                bar.wait();
                if held.is_some() {
                    let _ = s.try_lock_for(Duration::from_millis(100));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let collected = witnesses.lock().unwrap().clone();
    let relation_builder = std::mem::take(&mut *builder.lock().unwrap());
    (collected, relation_builder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness against Phase I: any cycle the live detector reports
    /// on a native execution must also be found by iGoodlock in the
    /// relation built from that same execution's event stream.
    #[test]
    fn live_witnesses_agree_with_igoodlock(
        specs in prop::collection::vec(
            (0usize..3, 0usize..3)
                .prop_filter_map("lock order needs two distinct locks", |(a, b)| {
                    (a != b).then_some((a, b))
                }),
            2..4,
        )
    ) {
        let (witnesses, builder) = run_contended(&specs);
        let relation = builder.finish();
        let cycles = igoodlock(&relation, &IGoodlockOptions::default());
        let cycle_lock_sets: Vec<Vec<ObjId>> = cycles
            .iter()
            .map(|c| {
                let mut locks = c.locks();
                locks.sort();
                locks
            })
            .collect();
        for w in &witnesses {
            let live = sorted_locks(w);
            prop_assert!(
                cycle_lock_sets.contains(&live),
                "live witness {live:?} has no matching iGoodlock cycle in {cycle_lock_sets:?}"
            );
        }
    }
}
