//! End-to-end: tracked native locks spilling a binary v2 artifact
//! through the SPSC ring writer, sealed by `Tracker::seal`, analyzable
//! offline by `dfz analyze` exactly like a JSONL spill.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use df_events::{read_trace_bytes, SpillConfig, TraceFormat, TRACE_BINARY_MAGIC};
use df_igoodlock::{igoodlock, IGoodlockOptions, LockDependencyRelation};
use df_lock::{TrackedMutex, Tracker, TrackerConfig};

/// A `Write` target whose bytes outlive the sink that owns it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs two threads that nest two tracked locks in opposite orders —
/// sequentially, so no real deadlock forms but iGoodlock sees the
/// inversion — under a tracker spilling with `spill`.
fn inverted_order_run(spill: &SpillConfig) -> (Vec<u8>, u64, u64) {
    let buf = SharedBuf::default();
    let (config, sink) = TrackerConfig::default()
        .with_spill(buf.clone(), spill)
        .expect("spill preamble");
    let tracker = Tracker::new(config);
    let a = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let b = Arc::new(TrackedMutex::with_tracker(&tracker, ()));

    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    tracker
        .spawn("order a->b", move || {
            let outer = a1.lock().unwrap();
            let inner = b1.lock().unwrap();
            drop((inner, outer));
        })
        .join()
        .unwrap();
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    tracker
        .spawn("order b->a", move || {
            let outer = b2.lock().unwrap();
            let inner = a2.lock().unwrap();
            drop((inner, outer));
        })
        .join()
        .unwrap();

    tracker.seal();
    let mut guard = sink.lock().unwrap();
    let (events, bytes) = guard.close().expect("sealed spill");
    (buf.bytes(), events, bytes)
}

#[test]
fn tracked_run_spills_binary_through_the_ring_and_analyzes() {
    let spill = SpillConfig::with_format(TraceFormat::Binary).with_ring(256);
    let (bytes, events, written) = inverted_order_run(&spill);
    assert!(events > 0);
    assert_eq!(written as usize, bytes.len());
    assert!(bytes.starts_with(&TRACE_BINARY_MAGIC));

    let trace = read_trace_bytes(&bytes).expect("sealed binary artifact");
    assert_eq!(trace.events().len() as u64, events);
    let relation = LockDependencyRelation::from_trace(&trace);
    let cycles = igoodlock(&relation, &IGoodlockOptions::default());
    assert_eq!(
        cycles.len(),
        1,
        "the inverted nesting must surface as one iGoodlock cycle"
    );
}

#[test]
fn ring_binary_spill_matches_synchronous_jsonl_spill_semantically() {
    let ring_binary = SpillConfig::with_format(TraceFormat::Binary).with_ring(64);
    let sync_jsonl = SpillConfig::default();
    let (bin_bytes, bin_events, _) = inverted_order_run(&ring_binary);
    let (jsonl_bytes, jsonl_events, _) = inverted_order_run(&sync_jsonl);
    assert_eq!(bin_events, jsonl_events);
    assert!(
        bin_bytes.len() < jsonl_bytes.len(),
        "binary ({}) must be denser than JSONL ({})",
        bin_bytes.len(),
        jsonl_bytes.len()
    );

    // Offline analysis through the CLI front door is byte-identical
    // across the two encodings of the same (deterministically replayed)
    // workload shape.
    let opts = df_cli::CliOptions {
        json: true,
        ..df_cli::CliOptions::default()
    };
    let from_bin = df_cli::cmd_analyze(&bin_bytes, "ring.bin", &opts).unwrap();
    let from_jsonl = df_cli::cmd_analyze(&jsonl_bytes, "sync.jsonl", &opts).unwrap();
    assert_eq!(from_bin.text, from_jsonl.text);
    assert_ne!(
        from_bin.text.trim(),
        "[]",
        "analysis must report the inversion cycle"
    );
}
