use deadlock_fuzzer::{Config, DeadlockFuzzer};
fn main() {
    for b in df_benchmarks::table1_suite() {
        let f = DeadlockFuzzer::from_ref(b.program.clone(), Config::default());
        let (d, _) = f.baseline(20).expect("trials > 0");
        println!("{:<22} {}/20", b.name, d);
    }
}
