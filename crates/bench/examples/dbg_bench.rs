use deadlock_fuzzer::{Config, DeadlockFuzzer};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "logging".into());
    let program = match name.as_str() {
        "logging" => df_benchmarks::logging::program(),
        "dbcp" => df_benchmarks::dbcp::program(),
        "lists" => df_benchmarks::lists::program(),
        "maps" => df_benchmarks::maps::program(),
        "section4" => df_benchmarks::section4::program(),
        "jigsaw" => df_benchmarks::jigsaw::program(),
        other => panic!("unknown {other}"),
    };
    let fuzzer = DeadlockFuzzer::from_ref(program, Config::default());
    let p1 = fuzzer.phase1();
    println!("phase1 outcome: {:?}", p1.run_outcome);
    println!(
        "cycles: {} (relation {})",
        p1.cycle_count(),
        p1.relation_size
    );
    for (i, c) in p1.abstract_cycles.iter().enumerate() {
        println!("  cycle {i}: {c}");
    }
    for (i, c) in p1.abstract_cycles.iter().enumerate() {
        let pr = fuzzer.estimate_probability(c, 5).expect("trials > 0");
        println!(
            "cycle {i}: deadlocks={} matched={} thrash={:.1}",
            pr.deadlocks, pr.matched, pr.avg_thrashes
        );
    }
}
