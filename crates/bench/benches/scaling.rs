//! Scalability: Phase I and Phase II cost as program size grows
//! (synthetic workloads; the paper ran 600 KLoC of Java and reports the
//! active checker stays "within a factor of six").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deadlock_fuzzer::{Config, DeadlockFuzzer};
use df_benchmarks::synthetic::{program, SyntheticSpec};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for (name, spec) in [
        ("small", SyntheticSpec::small()),
        ("medium", SyntheticSpec::medium()),
        ("large", SyntheticSpec::large()),
    ] {
        let fuzzer = DeadlockFuzzer::from_ref(program(spec), Config::default());
        group.bench_with_input(BenchmarkId::new("phase1", name), &fuzzer, |b, f| {
            b.iter(|| f.phase1());
        });
        let phase1 = fuzzer.phase1();
        if let Some(cycle) = phase1.abstract_cycles.first().cloned() {
            group.bench_with_input(
                BenchmarkId::new("phase2", name),
                &(fuzzer, cycle),
                |b, (f, cycle)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        f.phase2(cycle, seed)
                    });
                },
            );
        } else {
            // Deadlock-free spec: measure the uninstrumented-equivalent
            // baseline instead.
            group.bench_with_input(BenchmarkId::new("baseline", name), &fuzzer, |b, f| {
                b.iter(|| f.baseline(1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
