//! Criterion benches for Table 1's runtime columns: for every benchmark,
//! the uninstrumented (plain random) run, Phase I (iGoodlock) and one
//! Phase II (DeadlockFuzzer) run.
//!
//! The paper's claim to check: "the overhead of our active checker is
//! within a factor of six, even for large programs" (Table 1 columns
//! 3–5).

use criterion::{criterion_group, criterion_main, Criterion};
use deadlock_fuzzer::{Config, DeadlockFuzzer};
use df_benchmarks::table1_suite;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_runtimes");
    group.sample_size(10);
    for bench in table1_suite() {
        let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), Config::default());
        group.bench_function(format!("normal/{}", bench.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fuzzer.baseline(1)
            });
        });
        group.bench_function(format!("igoodlock/{}", bench.name), |b| {
            b.iter(|| fuzzer.phase1());
        });
        let phase1 = fuzzer.phase1();
        if let Some(cycle) = phase1.abstract_cycles.first() {
            let cycle = cycle.clone();
            group.bench_function(format!("deadlockfuzzer/{}", bench.name), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    fuzzer.phase2(&cycle, seed)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
