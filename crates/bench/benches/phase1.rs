//! Microbenchmarks of the iGoodlock algorithm itself: the iterative
//! relational join on synthetic lock dependency relations of increasing
//! size. The paper's complexity claim: iGoodlock trades memory for
//! runtime compared with DFS-based Goodlock — the join should scale
//! smoothly with relation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_events::{Label, ObjId, ThreadId};
use df_igoodlock::{goodlock_dfs, igoodlock, IGoodlockOptions, LockDep, LockDependencyRelation};

/// Builds a relation with `pairs` two-cycles plus `noise` acyclic tuples.
fn synthetic_relation(pairs: u32, noise: u32) -> LockDependencyRelation {
    let mut deps = Vec::new();
    for p in 0..pairs {
        let l1 = ObjId::new(1000 + 2 * p);
        let l2 = ObjId::new(1001 + 2 * p);
        let c = Label::new(&format!("pair{p}"));
        deps.push(LockDep {
            thread: ThreadId::new(1),
            thread_obj: ObjId::new(1),
            lockset: vec![l1],
            lock: l2,
            contexts: vec![c, c],
        });
        deps.push(LockDep {
            thread: ThreadId::new(2),
            thread_obj: ObjId::new(2),
            lockset: vec![l2],
            lock: l1,
            contexts: vec![c, c],
        });
    }
    for n in 0..noise {
        // Strictly ordered chain: never cyclic.
        let a = ObjId::new(5000 + n);
        let b = ObjId::new(5001 + n);
        deps.push(LockDep {
            thread: ThreadId::new(3 + n % 4),
            thread_obj: ObjId::new(3 + n % 4),
            lockset: vec![a],
            lock: b,
            contexts: vec![Label::new(&format!("noise{n}")), Label::new("inner")],
        });
    }
    LockDependencyRelation::from_deps(deps)
}

fn bench_phase1(c: &mut Criterion) {
    let mut group = c.benchmark_group("igoodlock_join");
    for size in [8u32, 32, 128] {
        let relation = synthetic_relation(size / 2, size * 4);
        group.bench_with_input(BenchmarkId::new("cycles", size), &relation, |b, rel| {
            b.iter(|| igoodlock(rel, &IGoodlockOptions::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("length2_only", size),
            &relation,
            |b, rel| {
                b.iter(|| igoodlock(rel, &IGoodlockOptions::length_two_only()));
            },
        );
        // The paper's contribution 1: the iterative join vs the classical
        // lock-graph DFS ("uses more memory, but reduces runtime
        // complexity").
        group.bench_with_input(
            BenchmarkId::new("goodlock_dfs_baseline", size),
            &relation,
            |b, rel| {
                b.iter(|| goodlock_dfs(rel, &IGoodlockOptions::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phase1);
criterion_main!(benches);
