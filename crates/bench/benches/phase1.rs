//! Microbenchmarks of the iGoodlock algorithm itself: the iterative
//! relational join on synthetic lock dependency relations of increasing
//! size. The paper's complexity claim: iGoodlock trades memory for
//! runtime compared with DFS-based Goodlock — the join should scale
//! smoothly with relation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::synthetic_join_relation;
use df_igoodlock::{goodlock_dfs, igoodlock, naive_igoodlock, IGoodlockOptions};

fn bench_phase1(c: &mut Criterion) {
    let mut group = c.benchmark_group("igoodlock_join");
    for size in [8u32, 32, 128] {
        let relation = synthetic_join_relation(size / 2, size * 4);
        group.bench_with_input(BenchmarkId::new("cycles", size), &relation, |b, rel| {
            b.iter(|| igoodlock(rel, &IGoodlockOptions::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("naive_oracle", size),
            &relation,
            |b, rel| {
                b.iter(|| naive_igoodlock(rel, &IGoodlockOptions::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("length2_only", size),
            &relation,
            |b, rel| {
                b.iter(|| igoodlock(rel, &IGoodlockOptions::length_two_only()));
            },
        );
        // The paper's contribution 1: the iterative join vs the classical
        // lock-graph DFS ("uses more memory, but reduces runtime
        // complexity").
        group.bench_with_input(
            BenchmarkId::new("goodlock_dfs_baseline", size),
            &relation,
            |b, rel| {
                b.iter(|| goodlock_dfs(rel, &IGoodlockOptions::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phase1);
criterion_main!(benches);
