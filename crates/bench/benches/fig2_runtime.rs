//! Criterion benches for Figure 2 (top left): Phase II runtime of every
//! variant on the four Figure 2 benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use deadlock_fuzzer::{Config, DeadlockFuzzer, Variant};
use df_bench::figure2_benchmarks;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_runtime");
    group.sample_size(10);
    for bench in figure2_benchmarks() {
        for variant in Variant::ALL {
            let config = Config::default().with_variant(variant);
            let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), config);
            let phase1 = fuzzer.phase1();
            let Some(cycle) = phase1.abstract_cycles.first().cloned() else {
                continue;
            };
            group.bench_function(
                format!("{}/{}", bench.name, variant.label().replace(' ', "_")),
                |b| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        fuzzer.phase2(&cycle, seed)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
