//! Experiment harness: regenerates Table 1 and Figure 2 of the paper.
//!
//! The `repro` binary (`cargo run -p df-bench --bin repro -- <experiment>`)
//! prints the paper-style tables; the Criterion benches
//! (`cargo bench -p df-bench`) measure the runtime columns. Both are built
//! on the functions here so the numbers agree. The `igoodlock_bench`
//! binary measures Phase I's cycle computation in isolation (naive vs
//! indexed join vs the DFS lock-graph baseline) and emits
//! `BENCH_igoodlock.json`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod igoodlock_bench;
mod precision;
mod streaming_bench;
mod trace_bench;

pub use igoodlock_bench::{
    igoodlock_bench, igoodlock_bench_row, join_parallel_bench, join_parallel_rows,
    philosophers_ring_relation, synthetic_join_relation, IGoodlockBenchRow, JoinParallelRow,
};
pub use precision::{precision_bench, precision_row, PrecisionRow};
pub use streaming_bench::{streaming_bench, streaming_bench_row, StreamingBenchRow};
pub use trace_bench::{synthetic_trace, trace_io_bench_rows, TraceIoBenchRow};

use std::time::Duration;

use deadlock_fuzzer::{Config, DeadlockFuzzer, TrialPool, Variant};
use df_benchmarks::{table1_suite, Benchmark};
use serde::Serialize;

/// One row of the regenerated Table 1.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Lines of code of the original Java program (reference).
    pub paper_loc: usize,
    /// Mean wall time of a plain (simple-random) run.
    pub normal: Duration,
    /// Wall time of Phase I (instrumented run + iGoodlock).
    pub igoodlock: Duration,
    /// Mean wall time of a Phase II run.
    pub df: Duration,
    /// Potential deadlock cycles reported by iGoodlock.
    pub cycles: usize,
    /// Cycles confirmed by DeadlockFuzzer (reproduced at least once).
    pub reproduced: usize,
    /// Mean probability of reproducing a cycle (matched trials / trials,
    /// averaged over cycles; the paper's column 9).
    pub probability: Option<f64>,
    /// Mean thrashings per Phase II run (column 10).
    pub avg_thrashes: Option<f64>,
    /// Mean §4 yields injected per Phase II run.
    pub avg_yields: Option<f64>,
    /// Mean threads paused per Phase II run.
    pub avg_pauses: Option<f64>,
    /// Deadlocks observed in the plain-run control (paper: 0 out of 100).
    pub baseline_deadlocks: u32,
    /// The paper's published row, for side-by-side comparison.
    pub paper_cycles: &'static str,
    /// Published "real" count.
    pub paper_real: &'static str,
    /// Published "reproduced" count.
    pub paper_reproduced: &'static str,
    /// Published probability.
    pub paper_probability: &'static str,
    /// Published thrashes.
    pub paper_thrashes: &'static str,
}

/// Runs the full pipeline for one benchmark and aggregates a Table 1 row.
pub fn table1_row(bench: &Benchmark, trials: u32, baseline_runs: u32) -> Table1Row {
    table1_row_with(bench, trials, baseline_runs, 0)
}

/// [`table1_row`] with an explicit Phase II worker count for the
/// benchmark's own trial campaigns (`0` = auto, `1` = sequential — the
/// right setting when many rows are already being measured in parallel).
fn table1_row_with(bench: &Benchmark, trials: u32, baseline_runs: u32, jobs: usize) -> Table1Row {
    let config = Config::default()
        .with_confirm_trials(trials)
        .with_jobs(jobs);
    let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), config);
    let (baseline_deadlocks, normal) = fuzzer.baseline(baseline_runs).expect("baseline_runs > 0");
    let phase1 = fuzzer.phase1();
    let report = fuzzer.run();
    let n = report.confirmations.len();
    let (probability, avg_thrashes, avg_yields, avg_pauses, df) = if n == 0 {
        (None, None, None, None, normal)
    } else {
        let mean = |f: fn(&deadlock_fuzzer::ProbabilityReport) -> f64| {
            report
                .confirmations
                .iter()
                .map(|c| f(&c.probability))
                .sum::<f64>()
                / n as f64
        };
        let prob = report
            .confirmations
            .iter()
            .map(|c| c.probability.probability)
            .sum::<f64>()
            / n as f64;
        let df = report
            .confirmations
            .iter()
            .map(|c| c.probability.avg_duration)
            .sum::<Duration>()
            / u32::try_from(n).expect("cycle count fits u32");
        (
            Some(prob),
            Some(mean(|p| p.avg_thrashes)),
            Some(mean(|p| p.avg_yields)),
            Some(mean(|p| p.avg_pauses)),
            df,
        )
    };
    Table1Row {
        name: bench.name.to_string(),
        paper_loc: bench.paper_loc,
        normal,
        igoodlock: phase1.duration,
        df,
        cycles: report.potential_count(),
        reproduced: report.confirmed_count(),
        probability,
        avg_thrashes,
        avg_yields,
        avg_pauses,
        baseline_deadlocks,
        paper_cycles: bench.paper_row.cycles,
        paper_real: bench.paper_row.real,
        paper_reproduced: bench.paper_row.reproduced,
        paper_probability: bench.paper_row.probability,
        paper_thrashes: bench.paper_row.thrashes,
    }
}

/// Regenerates all of Table 1.
pub fn table1(trials: u32, baseline_runs: u32) -> Vec<Table1Row> {
    table1_suite()
        .iter()
        .map(|b| table1_row(b, trials, baseline_runs))
        .collect()
}

/// Regenerates Table 1 with the rows fanned out across `jobs` workers
/// (`0` = one per available hardware thread). Each row's own trial
/// campaigns run sequentially so the row-level pool is the only source
/// of parallelism; every measurement except the wall-clock columns is
/// identical at any `jobs` value.
pub fn table1_with_jobs(trials: u32, baseline_runs: u32, jobs: usize) -> Vec<Table1Row> {
    let suite = table1_suite();
    TrialPool::new(jobs).run_trials(
        u32::try_from(suite.len()).expect("suite fits u32"),
        |i| table1_row_with(&suite[i as usize], trials, baseline_runs, 1),
        |_| false,
    )
}

/// The four benchmarks of Figure 2, in the paper's order. "Collections"
/// is represented by the synchronized-maps model (the paper's interesting
/// 0.52 case).
pub fn figure2_benchmarks() -> Vec<Benchmark> {
    vec![
        df_benchmarks::maps::benchmark(),
        df_benchmarks::logging::benchmark(),
        df_benchmarks::dbcp::benchmark(),
        df_benchmarks::swing::benchmark(),
    ]
}

/// One cell of Figure 2: a benchmark × variant measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Fig2Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Variant label (Figure 2 legend).
    pub variant: String,
    /// Phase II runtime normalized to the uninstrumented run (top-left
    /// graph).
    pub runtime_normalized: f64,
    /// Probability of reproducing the deadlock (top-right graph).
    pub probability: f64,
    /// Average thrashings per run (bottom-left graph).
    pub avg_thrashes: f64,
    /// Average §4 yields injected per run.
    pub avg_yields: f64,
}

/// Measures one Figure 2 cell.
pub fn fig2_cell(bench: &Benchmark, variant: Variant, trials: u32) -> Fig2Cell {
    fig2_cell_with(bench, variant, trials, 0)
}

/// [`fig2_cell`] with an explicit Phase II worker count for the cell's
/// own trial campaigns.
fn fig2_cell_with(bench: &Benchmark, variant: Variant, trials: u32, jobs: usize) -> Fig2Cell {
    let config = Config::default()
        .with_variant(variant)
        .with_confirm_trials(trials)
        .with_jobs(jobs);
    let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), config);
    let (_, normal) = fuzzer.baseline(3).expect("trials > 0");
    let report = fuzzer.run();
    let n = report.confirmations.len().max(1) as f64;
    let probability = report
        .confirmations
        .iter()
        .map(|c| c.probability.probability)
        .sum::<f64>()
        / n;
    let avg_thrashes = report
        .confirmations
        .iter()
        .map(|c| c.probability.avg_thrashes)
        .sum::<f64>()
        / n;
    let avg_yields = report
        .confirmations
        .iter()
        .map(|c| c.probability.avg_yields)
        .sum::<f64>()
        / n;
    let df: Duration = if report.confirmations.is_empty() {
        normal
    } else {
        report
            .confirmations
            .iter()
            .map(|c| c.probability.avg_duration)
            .sum::<Duration>()
            / u32::try_from(report.confirmations.len()).expect("fits")
    };
    Fig2Cell {
        benchmark: bench.name.to_string(),
        variant: variant.label().to_string(),
        runtime_normalized: df.as_secs_f64() / normal.as_secs_f64().max(1e-9),
        probability,
        avg_thrashes,
        avg_yields,
    }
}

/// The (benchmark × variant) pairs of the Figure 2 grid, row-major in
/// the paper's order.
pub fn figure2_grid() -> Vec<(Benchmark, Variant)> {
    let mut pairs = Vec::new();
    for bench in figure2_benchmarks() {
        for variant in Variant::ALL {
            pairs.push((bench.clone(), variant));
        }
    }
    pairs
}

/// Measures the Figure 2 cells for the given pairs, fanned out across
/// `jobs` workers (`0` = one per available hardware thread). Cells are
/// independent seeded pipelines, so every measurement except the
/// wall-clock-derived `runtime_normalized` is identical at any `jobs`
/// value; each cell's own trial campaign runs sequentially so the
/// sweep-level pool is the only source of parallelism.
pub fn fig2_cells_with_jobs(
    pairs: &[(Benchmark, Variant)],
    trials: u32,
    jobs: usize,
) -> Vec<Fig2Cell> {
    TrialPool::new(jobs).run_trials(
        u32::try_from(pairs.len()).expect("grid fits u32"),
        |i| {
            let (bench, variant) = &pairs[i as usize];
            fig2_cell_with(bench, *variant, trials, 1)
        },
        |_| false,
    )
}

/// Measures the whole Figure 2 grid (4 benchmarks × 5 variants).
pub fn figure2(trials: u32) -> Vec<Fig2Cell> {
    let mut cells = Vec::new();
    for bench in figure2_benchmarks() {
        for variant in Variant::ALL {
            cells.push(fig2_cell(&bench, variant, trials));
        }
    }
    cells
}

/// [`figure2`] with the sweep fanned out across `jobs` workers.
pub fn figure2_with_jobs(trials: u32, jobs: usize) -> Vec<Fig2Cell> {
    fig2_cells_with_jobs(&figure2_grid(), trials, jobs)
}

/// Correlation points for Figure 2 (bottom right): (thrashes,
/// probability) per cycle confirmation, pooled over the Figure 2
/// benchmarks under the default variant plus the degraded variants (the
/// paper pools its variant runs the same way).
pub fn fig2_correlation(trials: u32) -> Vec<(f64, f64)> {
    let mut points = Vec::new();
    for bench in figure2_benchmarks() {
        for variant in [
            Variant::ContextExecIndex,
            Variant::IgnoreAbstraction,
            Variant::IgnoreContext,
            Variant::NoYields,
        ] {
            let config = Config::default()
                .with_variant(variant)
                .with_confirm_trials(trials);
            let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), config);
            let report = fuzzer.run();
            for c in &report.confirmations {
                points.push((c.probability.avg_thrashes, c.probability.probability));
            }
        }
    }
    points
}

/// One row of the motivation experiment (paper §1): how many program
/// runs each technique needs to produce Figure 1's deadlock, as the
/// benign prefix (execution length) grows.
#[derive(Clone, Debug, Serialize)]
pub struct MotivationRow {
    /// Work units of the long-running prefix.
    pub prefix: u32,
    /// Total schedules in the program's (full) schedule tree — what a
    /// model checker must cover; `None` when the cap was hit first.
    pub exhaustive_runs: Option<u64>,
    /// Runs of plain random testing until the first deadlock (capped).
    pub random_runs: Option<u64>,
    /// Runs DeadlockFuzzer needed (Phase I observation + biased runs
    /// until the deadlock — in practice 1 biased run).
    pub deadlockfuzzer_runs: u64,
}

/// Measures the §1 motivation: schedules explode with execution length
/// for systematic exploration, random testing is hit-or-miss, and the
/// two-phase approach stays O(1) runs.
pub fn motivation(prefixes: &[u32], cap: u64) -> Vec<MotivationRow> {
    use deadlock_fuzzer::{Named, Program};
    use df_events::Label;
    use df_fuzzer::{explore, ExploreOptions};
    use df_runtime::{LockRef, TCtx};

    fn body(l1: LockRef, l2: LockRef, work: u32) -> impl FnOnce(&TCtx) + Send + 'static {
        move |ctx: &TCtx| {
            ctx.work(work);
            let g1 = ctx.lock(&l1, Label::new("Motiv.first"));
            let g2 = ctx.lock(&l2, Label::new("Motiv.second"));
            drop(g2);
            drop(g1);
        }
    }
    fn program(prefix: u32) -> impl Fn(&TCtx) + Send + Sync + Clone + 'static {
        move |ctx: &TCtx| {
            let a = ctx.new_lock(Label::new("Motiv.newA"));
            let b = ctx.new_lock(Label::new("Motiv.newB"));
            let t1 = ctx.spawn(Label::new("Motiv.spawn1"), "t1", body(a, b, prefix));
            let t2 = ctx.spawn(Label::new("Motiv.spawn2"), "t2", body(b, a, 0));
            ctx.join(&t1, Label::new("Motiv.join"));
            ctx.join(&t2, Label::new("Motiv.join"));
        }
    }

    prefixes
        .iter()
        .map(|&prefix| {
            // Exhaustive exploration: size of the full schedule tree
            // (the paper's "exponential increase in the number of thread
            // schedules with execution length").
            let p = program(prefix);
            let explored = explore(
                {
                    let p = p.clone();
                    move || {
                        let p = p.clone();
                        move |ctx: &TCtx| p(ctx)
                    }
                },
                &ExploreOptions {
                    max_runs: cap as usize,
                    stop_at_first_deadlock: false,
                    ..ExploreOptions::default()
                },
            );
            let exhaustive_runs = explored.exhausted.then_some(explored.runs as u64);
            // Plain random testing.
            let fuzzer = DeadlockFuzzer::from_ref(
                std::sync::Arc::new(Named::new("motivation", program(prefix))),
                Config::default(),
            );
            let mut random_runs = None;
            for i in 0..cap {
                let r = fuzzer.phase2(&deadlock_fuzzer::igoodlock::AbstractCycle::new(vec![]), i);
                if r.deadlocked() {
                    random_runs = Some(i + 1);
                    break;
                }
            }
            // DeadlockFuzzer: one observation run + biased runs until the
            // deadlock.
            let phase1 = fuzzer.phase1();
            let mut df_runs = 1; // the Phase I observation
            if let Some(cycle) = phase1.abstract_cycles.first() {
                for i in 0..cap {
                    df_runs += 1;
                    if fuzzer.phase2(cycle, 10_000 + i).deadlocked() {
                        break;
                    }
                }
            }
            let _ = Program::name(&program(prefix)); // keep trait in scope
            MotivationRow {
                prefix,
                exhaustive_runs,
                random_runs,
                deadlockfuzzer_runs: df_runs,
            }
        })
        .collect()
}

/// Pearson correlation coefficient of a point set (expected negative for
/// the thrash/probability relation).
pub fn pearson(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let (mx, my) = (
        points.iter().map(|p| p.0).sum::<f64>() / n,
        points.iter().map(|p| p.1).sum::<f64>() / n,
    );
    let cov = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
    let (sx, sy) = (
        points
            .iter()
            .map(|p| (p.0 - mx).powi(2))
            .sum::<f64>()
            .sqrt(),
        points
            .iter()
            .map(|p| (p.1 - my).powi(2))
            .sum::<f64>()
            .sqrt(),
    );
    if sx == 0.0 || sy == 0.0 {
        0.0
    } else {
        cov / (sx * sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_detects_perfect_anticorrelation() {
        let points = vec![(0.0, 1.0), (1.0, 0.5), (2.0, 0.0)];
        assert!((pearson(&points) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[]), 0.0);
        assert_eq!(pearson(&[(1.0, 1.0)]), 0.0);
        // Degenerate: no variance in x.
        assert_eq!(pearson(&[(1.0, 0.0), (1.0, 1.0)]), 0.0);
    }

    #[test]
    fn table1_row_on_a_small_benchmark() {
        let bench = df_benchmarks::logging::benchmark();
        let row = table1_row(&bench, 3, 2);
        assert_eq!(row.cycles, 3);
        assert_eq!(row.reproduced, 3);
        assert!(row.probability.unwrap() > 0.9);
        assert_eq!(row.paper_probability, "1.00");
    }

    #[test]
    fn fig2_cell_default_variant_beats_trivial_on_collections() {
        let bench = df_benchmarks::maps::benchmark();
        let best = fig2_cell(&bench, Variant::ContextExecIndex, 4);
        assert!(best.probability > 0.0);
        assert!(best.runtime_normalized > 0.0);
    }

    #[test]
    fn parallel_sweep_matches_the_sequential_sweep() {
        let pairs = vec![
            (df_benchmarks::maps::benchmark(), Variant::ContextExecIndex),
            (df_benchmarks::logging::benchmark(), Variant::NoYields),
            (df_benchmarks::maps::benchmark(), Variant::IgnoreAbstraction),
        ];
        let seq = fig2_cells_with_jobs(&pairs, 3, 1);
        let par = fig2_cells_with_jobs(&pairs, 3, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // Cell order and every seeded measurement agree; only the
            // wall-clock-derived runtime_normalized may differ.
            assert_eq!(s.benchmark, p.benchmark);
            assert_eq!(s.variant, p.variant);
            assert_eq!(s.probability, p.probability);
            assert_eq!(s.avg_thrashes, p.avg_thrashes);
            assert_eq!(s.avg_yields, p.avg_yields);
        }
    }

    #[test]
    fn figure2_grid_covers_every_benchmark_and_variant() {
        let grid = figure2_grid();
        assert_eq!(grid.len(), figure2_benchmarks().len() * Variant::ALL.len());
    }
}
