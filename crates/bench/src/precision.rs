//! The precision envelope: predicted (feasibility) vs confirmed
//! (Phase II) rates per Table 1 benchmark, plus the trials the adaptive
//! allocator saved over the uniform campaign.
//!
//! Two invariants gate CI through `igoodlock_bench`:
//!
//! * **soundness** — no cycle scored `Infeasible` is ever confirmed by a
//!   trial (the uniform leg still spends trials on such cycles, so this
//!   is checked against real executions, not just the allocator's
//!   pruning);
//! * **parity** — the uncapped adaptive campaign confirms exactly the
//!   cycle set the uniform campaign confirms, with fewer trials.

use deadlock_fuzzer::{Config, DeadlockFuzzer, Report};
use df_benchmarks::{table1_suite, Benchmark};
use df_igoodlock::FeasibilityVerdict;
use serde::Serialize;

/// Predicted-vs-confirmed measurements for one benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct PrecisionRow {
    /// Benchmark name.
    pub name: String,
    /// Potential cycles reported by Phase I.
    pub cycles: usize,
    /// Cycles scored `Feasible`.
    pub feasible: usize,
    /// Cycles scored `Infeasible` (soundly pruned by the partial-order
    /// check).
    pub infeasible: usize,
    /// Cycles scored `Unknown`.
    pub unknown: usize,
    /// Cycles the uniform campaign confirmed.
    pub confirmed_uniform: usize,
    /// Cycles the adaptive campaign confirmed.
    pub confirmed_adaptive: usize,
    /// Whether both campaigns confirmed exactly the same cycle indices —
    /// the jobs-invariant parity contract of the adaptive allocator.
    pub same_cycle_set: bool,
    /// Total Phase II trials the uniform campaign spent.
    pub trials_uniform: u32,
    /// Total Phase II trials the adaptive campaign spent.
    pub trials_adaptive: u32,
    /// Trials the adaptive campaign saved (`uniform - adaptive`).
    pub trials_saved: u32,
    /// Cycles scored `Infeasible` that a trial nonetheless confirmed —
    /// any non-zero value is a soundness bug and fails the bench.
    pub infeasible_confirmed: usize,
}

/// Set of confirmed cycle indices in a report.
fn confirmed_set(report: &Report) -> Vec<usize> {
    report
        .confirmations
        .iter()
        .filter(|c| c.confirmed)
        .map(|c| c.cycle_index)
        .collect()
}

/// Total trials spent across a report's campaigns.
fn trials_spent(report: &Report) -> u32 {
    report
        .confirmations
        .iter()
        .map(|c| c.probability.trials)
        .sum()
}

/// Measures one benchmark's precision row: the same seeded pipeline run
/// twice at `jobs = 1` — once with the uniform campaign, once with the
/// adaptive allocator — both with feasibility scoring on.
pub fn precision_row(bench: &Benchmark, trials: u32) -> PrecisionRow {
    let config = |adaptive: bool| {
        Config::default()
            .with_confirm_trials(trials)
            .with_feasibility(true)
            .with_adaptive_trials(adaptive)
            .with_jobs(1)
    };
    let uniform = DeadlockFuzzer::from_ref(bench.program.clone(), config(false)).run();
    let adaptive = DeadlockFuzzer::from_ref(bench.program.clone(), config(true)).run();
    let verdicts = |v: FeasibilityVerdict| {
        uniform
            .phase1
            .feasibility
            .iter()
            .filter(|j| j.verdict == v)
            .count()
    };
    // The soundness check leans on the *uniform* leg: it spends trials
    // even on Infeasible-scored cycles, so a wrong verdict would show up
    // as a real confirmation here (the adaptive leg would have pruned
    // the cycle without ever testing it).
    let infeasible_confirmed = uniform
        .confirmations
        .iter()
        .chain(&adaptive.confirmations)
        .filter(|c| {
            c.confirmed
                && matches!(
                    c.feasibility.as_ref().map(|j| j.verdict),
                    Some(FeasibilityVerdict::Infeasible)
                )
        })
        .count();
    let (trials_uniform, trials_adaptive) = (trials_spent(&uniform), trials_spent(&adaptive));
    PrecisionRow {
        name: bench.name.to_string(),
        cycles: uniform.potential_count(),
        feasible: verdicts(FeasibilityVerdict::Feasible),
        infeasible: verdicts(FeasibilityVerdict::Infeasible),
        unknown: verdicts(FeasibilityVerdict::Unknown),
        confirmed_uniform: uniform.confirmed_count(),
        confirmed_adaptive: adaptive.confirmed_count(),
        same_cycle_set: confirmed_set(&uniform) == confirmed_set(&adaptive),
        trials_uniform,
        trials_adaptive,
        trials_saved: trials_uniform.saturating_sub(trials_adaptive),
        infeasible_confirmed,
    }
}

/// The precision envelope over the whole Table 1 suite.
pub fn precision_bench(trials: u32) -> Vec<PrecisionRow> {
    table1_suite()
        .iter()
        .map(|b| precision_row(b, trials))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 has no Table 1 registry entry, so the test builds one.
    fn figure1_bench() -> Benchmark {
        Benchmark {
            name: "figure1",
            paper_loc: 0,
            expected_cycles: Some(1),
            expected_real: Some(1),
            paper_row: df_benchmarks::suite::PaperRow {
                cycles: "1",
                real: "1",
                reproduced: "1",
                probability: "1.00",
                thrashes: "0.00",
            },
            program: df_benchmarks::figure1::program(true),
        }
    }

    #[test]
    fn precision_row_on_figure1_is_sound_and_cheaper() {
        let row = precision_row(&figure1_bench(), 6);
        assert_eq!(row.cycles, 1);
        assert_eq!(row.feasible + row.infeasible + row.unknown, row.cycles);
        assert_eq!(row.infeasible_confirmed, 0);
        assert!(row.same_cycle_set, "{row:?}");
        assert_eq!(row.confirmed_uniform, 1);
        assert!(
            row.trials_adaptive < row.trials_uniform,
            "figure1 confirms on the first trial, so the adaptive \
             campaign must stop early: {row:?}"
        );
        assert_eq!(row.trials_saved, row.trials_uniform - row.trials_adaptive);
    }

    #[test]
    fn precision_rows_serialize() {
        let row = precision_row(&df_benchmarks::logging::benchmark(), 3);
        let json = serde_json::to_string(&row).expect("serializes");
        assert!(json.contains("\"trials_saved\""), "{json}");
    }
}
