//! Trace I/O throughput bench: events/sec and bytes/event for the two
//! `df-trace` encodings (JSONL v1, binary v2) on the two write paths
//! (offline — a materialized [`Trace`] serialized in one pass — and
//! streamed — events fed one at a time through an [`AnySpillSink`] with
//! the SPSC ring writer enabled). Before any numbers are taken the four
//! paths are cross-checked on a small workload: streamed output must be
//! byte-identical to offline output per format, and the binary artifact
//! must decode back to the exact source trace.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use df_events::{
    read_trace_bytes, write_trace_as, AnySpillSink, EventKind, EventSink, Label, ObjId, ObjKind,
    SpillConfig, ThreadId, Trace, TraceFormat,
};
use serde::Serialize;

/// One `trace_io` row of `BENCH_igoodlock.json`.
#[derive(Clone, Debug, Serialize)]
pub struct TraceIoBenchRow {
    /// Synthetic workload name (encodes the event count).
    pub workload: String,
    /// Write path × encoding: `offline-jsonl`, `offline-binary`,
    /// `streamed-jsonl`, or `streamed-binary`.
    pub mode: String,
    /// Events written.
    pub events: u64,
    /// Best-of-reps wall time, milliseconds.
    pub wall_ms: f64,
    /// Events per second at the best-of-reps time.
    pub events_per_sec: f64,
    /// Artifact size in bytes (identical across reps by construction).
    pub bytes: u64,
    /// Bytes per event (artifact size over event count).
    pub bytes_per_event: f64,
}

/// A `Write` target that counts and discards, so the bench measures
/// serialization — not the disk.
#[derive(Clone, Default)]
struct CountingSink(Arc<AtomicU64>);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Builds a deterministic synthetic trace of roughly `target_events`
/// events: `threads` workers cycling through nested acquire/release
/// pairs over `locks` locks, with a small set of interned sites — the
/// shape that favors the v2 string table exactly as a real workload
/// would.
pub fn synthetic_trace(target_events: u64, threads: u32, locks: u32) -> Trace {
    let threads = threads.max(1);
    let locks = locks.max(2);
    let mut trace = Trace::new();
    let spawn_site = Label::new("bench.spawn:1");
    let mut thread_objs = Vec::new();
    for t in 0..threads {
        let obj = trace.objects_mut().create_named(
            ObjKind::Thread,
            spawn_site,
            None,
            Vec::new(),
            Some(format!("bench-worker-{t}")),
        );
        thread_objs.push(obj);
        trace.bind_thread(ThreadId::new(t), obj);
    }
    let lock_site = Label::new("bench.new_lock:2");
    let lock_ids: Vec<ObjId> = (0..locks)
        .map(|_| {
            trace
                .objects_mut()
                .create(ObjKind::Lock, lock_site, None, Vec::new())
        })
        .collect();
    let sites: Vec<Label> = (0..4)
        .map(|i| Label::new(&format!("bench.hot_loop:{}", 10 + i)))
        .collect();

    // Each iteration emits 4 events: outer acquire, inner acquire,
    // inner release, outer release.
    let iterations = target_events / 4;
    for i in 0..iterations {
        let thread = ThreadId::new((i % u64::from(threads)) as u32);
        let outer = lock_ids[(i % lock_ids.len() as u64) as usize];
        let inner = lock_ids[((i + 1) % lock_ids.len() as u64) as usize];
        let outer_site = sites[(i % sites.len() as u64) as usize];
        let inner_site = sites[((i + 1) % sites.len() as u64) as usize];
        trace.push(
            thread,
            EventKind::acquire(outer, outer_site, Vec::new(), vec![outer_site]),
        );
        trace.push(
            thread,
            EventKind::acquire(inner, inner_site, vec![outer], vec![outer_site, inner_site]),
        );
        trace.push(thread, EventKind::release(inner, inner_site));
        trace.push(thread, EventKind::release(outer, outer_site));
    }
    trace
}

/// Streams `trace` event-by-event through `sink`, the way a live run
/// feeds a spill sink, and seals it.
fn feed<S: EventSink>(sink: &mut S, trace: &Trace) {
    for (thread, obj) in trace.thread_objs() {
        sink.on_thread_bound(thread, obj);
    }
    for event in trace.events() {
        sink.on_event(event);
    }
    sink.on_finish(trace);
}

/// Offline path: serialize the materialized trace in one pass.
/// Returns (wall seconds, artifact bytes).
fn run_offline(trace: &Trace, format: TraceFormat) -> Result<(f64, u64), String> {
    let counter = CountingSink::default();
    let start = Instant::now();
    write_trace_as(counter.clone(), trace, format).map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    Ok((wall, counter.0.load(Ordering::Relaxed)))
}

/// Streamed path: feed events one at a time through an [`AnySpillSink`]
/// with the SPSC ring enabled, timing until the seal lands.
fn run_streamed(trace: &Trace, format: TraceFormat) -> Result<(f64, u64), String> {
    let config = SpillConfig::with_format(format).with_ring(1024);
    let counter = CountingSink::default();
    let start = Instant::now();
    let mut sink = AnySpillSink::new(counter.clone(), &config).map_err(|e| e.to_string())?;
    feed(&mut sink, trace);
    let (_events, bytes) = sink.close().map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    if bytes != counter.0.load(Ordering::Relaxed) {
        return Err(format!(
            "streamed {format} byte accounting diverged: sink says {bytes}, \
             writer saw {}",
            counter.0.load(Ordering::Relaxed)
        ));
    }
    Ok((wall, bytes))
}

/// Cross-checks the four paths on `trace`: per format, streamed output
/// must be byte-identical to offline output, and the binary artifact
/// must decode back to the source trace.
fn parity_check(trace: &Trace) -> Result<(), String> {
    for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
        let offline = write_trace_as(Vec::new(), trace, format).map_err(|e| e.to_string())?;
        let streamed = {
            #[derive(Clone, Default)]
            struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
            impl Write for SharedBuf {
                fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> io::Result<()> {
                    Ok(())
                }
            }
            let buf = SharedBuf::default();
            let config = SpillConfig::with_format(format).with_ring(64);
            let mut sink = AnySpillSink::new(buf.clone(), &config).map_err(|e| e.to_string())?;
            feed(&mut sink, trace);
            sink.close().map_err(|e| e.to_string())?;
            let bytes = buf.0.lock().unwrap().clone();
            bytes
        };
        if offline != streamed {
            return Err(format!(
                "{format}: streamed artifact diverges from offline artifact \
                 ({} vs {} bytes)",
                streamed.len(),
                offline.len()
            ));
        }
        let decoded = read_trace_bytes(&offline).map_err(|e| e.to_string())?;
        if decoded.events() != trace.events() {
            return Err(format!("{format}: decoded events diverge from source"));
        }
    }
    Ok(())
}

/// Measures one synthetic workload across the four path×encoding modes.
///
/// # Errors
///
/// Returns a message describing the first parity failure — a
/// correctness bug, which callers should turn into a non-zero exit.
pub fn trace_io_bench_rows(target_events: u64, reps: u32) -> Result<Vec<TraceIoBenchRow>, String> {
    // Parity on a bounded prefix-shaped workload, so even huge
    // requested sizes cross-check quickly.
    parity_check(&synthetic_trace(target_events.min(20_000), 4, 8))?;

    let trace = synthetic_trace(target_events, 4, 8);
    let events = trace.events().len() as u64;
    let workload = format!("synthetic-{target_events}");
    type ModeRunner = fn(&Trace, TraceFormat) -> Result<(f64, u64), String>;
    let modes: [(&str, ModeRunner, TraceFormat); 4] = [
        ("offline-jsonl", run_offline, TraceFormat::Jsonl),
        ("offline-binary", run_offline, TraceFormat::Binary),
        ("streamed-jsonl", run_streamed, TraceFormat::Jsonl),
        ("streamed-binary", run_streamed, TraceFormat::Binary),
    ];
    let mut rows = Vec::new();
    for (mode, run, format) in modes {
        let mut best = f64::INFINITY;
        let mut bytes = 0u64;
        for _ in 0..reps.max(1) {
            let (wall, b) = run(&trace, format)?;
            best = best.min(wall);
            bytes = b;
        }
        rows.push(TraceIoBenchRow {
            workload: workload.clone(),
            mode: mode.to_string(),
            events,
            wall_ms: best * 1e3,
            events_per_sec: if best > 0.0 {
                events as f64 / best
            } else {
                0.0
            },
            bytes,
            bytes_per_event: if events > 0 {
                bytes as f64 / events as f64
            } else {
                0.0
            },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_hits_the_target_shape() {
        let trace = synthetic_trace(1_000, 4, 8);
        assert_eq!(trace.events().len(), 1_000);
        assert_eq!(trace.thread_objs().count(), 4);
        assert_eq!(trace.objects().len(), 4 + 8);
        assert!(trace.events().iter().any(|e| e.kind.is_acquire()));
    }

    #[test]
    fn rows_cover_all_four_modes_and_binary_is_denser() {
        let rows = trace_io_bench_rows(4_000, 1).expect("parity");
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.events, 4_000, "{}", row.mode);
            assert!(row.bytes > 0, "{}", row.mode);
            assert!(row.events_per_sec > 0.0, "{}", row.mode);
        }
        let bytes_of = |mode: &str| rows.iter().find(|r| r.mode == mode).unwrap().bytes;
        assert_eq!(bytes_of("offline-jsonl"), bytes_of("streamed-jsonl"));
        assert_eq!(bytes_of("offline-binary"), bytes_of("streamed-binary"));
        assert!(
            bytes_of("offline-binary") * 3 <= bytes_of("offline-jsonl"),
            "binary ({}) should be at least 3x denser than JSONL ({})",
            bytes_of("offline-binary"),
            bytes_of("offline-jsonl")
        );
    }
}
