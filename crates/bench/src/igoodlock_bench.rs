//! Phase I micro-bench: naive vs indexed iGoodlock vs the DFS baseline.
//!
//! Workloads are pure lock dependency relations (no scheduler, no program
//! execution), so the numbers isolate the cycle computation itself — the
//! paper's Table 2 flavor of comparison, plus our naive-vs-indexed
//! column. Every row cross-checks the three implementations before it is
//! reported: naive and indexed must agree exactly (same cycles, same
//! order, same `chains_built`), and the DFS baseline must report the
//! same cycle set.

use std::collections::BTreeSet;
use std::time::Instant;

use df_events::{Label, ObjId, ThreadId};
use df_igoodlock::{
    goodlock_dfs, igoodlock_parallel, igoodlock_with_stats, naive_igoodlock_with_stats,
    IGoodlockOptions, LockDep, LockDependencyRelation,
};
use serde::Serialize;

/// Jobs value used for the `parallel_ms` column of the main join table.
const PARALLEL_COLUMN_JOBS: usize = 4;

/// The lock dependency relation that Phase I extracts from an n-way
/// dining-philosophers ring: philosopher `p` (thread `p + 1`) acquires
/// fork `(p + 1) mod n` while holding fork `p`. The relation contains one
/// potential deadlock cycle — the full ring of length `n`.
pub fn philosophers_ring_relation(n: u32) -> LockDependencyRelation {
    let fork = |i: u32| ObjId::new(100 + (i % n));
    let deps = (0..n)
        .map(|p| {
            LockDep::exclusive(
                ThreadId::new(p + 1),
                ObjId::new(p + 1),
                vec![fork(p)],
                fork(p + 1),
                vec![
                    Label::new(&format!("Philosopher.takeLeft:{p}")),
                    Label::new(&format!("Philosopher.takeRight:{p}")),
                ],
            )
        })
        .collect();
    LockDependencyRelation::from_deps(deps)
}

/// A relation with `pairs` two-cycles plus `noise` acyclic tuples —
/// the "large synthetic relation" workload. The noise tuples are strictly
/// ordered chains that can never close, so the cycle count stays `pairs`
/// while the naive join's per-chain scan cost grows with the whole
/// relation.
pub fn synthetic_join_relation(pairs: u32, noise: u32) -> LockDependencyRelation {
    let mut deps = Vec::new();
    for p in 0..pairs {
        let l1 = ObjId::new(1000 + 2 * p);
        let l2 = ObjId::new(1001 + 2 * p);
        let c = Label::new(&format!("pair{p}"));
        deps.push(LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(1),
            vec![l1],
            l2,
            vec![c, c],
        ));
        deps.push(LockDep::exclusive(
            ThreadId::new(2),
            ObjId::new(2),
            vec![l2],
            l1,
            vec![c, c],
        ));
    }
    for n in 0..noise {
        // Strictly ordered chain: never cyclic.
        let a = ObjId::new(5000 + n);
        let b = ObjId::new(5001 + n);
        deps.push(LockDep::exclusive(
            ThreadId::new(3 + n % 4),
            ObjId::new(3 + n % 4),
            vec![a],
            b,
            vec![Label::new(&format!("noise{n}")), Label::new("inner")],
        ));
    }
    LockDependencyRelation::from_deps(deps)
}

/// One row of `BENCH_igoodlock.json`: a workload measured under all three
/// cycle-computation implementations.
#[derive(Clone, Debug, Serialize)]
pub struct IGoodlockBenchRow {
    /// Workload label (`ring-12`, `synthetic-48x4096`).
    pub workload: String,
    /// Deduplicated tuples in the relation.
    pub relation_size: usize,
    /// Potential deadlock cycles found (identical across implementations).
    pub cycles: usize,
    /// Best-of-reps wall time of the naive join, milliseconds.
    pub naive_ms: f64,
    /// Best-of-reps wall time of the indexed join, milliseconds.
    pub indexed_ms: f64,
    /// Best-of-reps wall time of the DFS lock-graph baseline, milliseconds.
    pub dfs_ms: f64,
    /// Best-of-reps wall time of the parallel join at 4 jobs,
    /// milliseconds — parity-checked against the indexed join before the
    /// row is emitted.
    pub parallel_ms: f64,
    /// `naive_ms / indexed_ms`.
    pub speedup: f64,
    /// Chains built by the join — asserted identical between naive and
    /// indexed before the row is emitted.
    pub chains_built: u64,
    /// Candidate tuples the naive join examined (`|D|` per open chain).
    pub naive_candidates_examined: u64,
    /// Candidate tuples the indexed join examined (bucket entries only).
    pub indexed_candidates_examined: u64,
    /// Chain extensions attempted by the DFS baseline.
    pub dfs_extensions: u64,
}

fn time_best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

fn cycle_set(cycles: &[df_igoodlock::Cycle]) -> BTreeSet<String> {
    cycles.iter().map(|c| c.to_string()).collect()
}

/// Measures one workload under naive, indexed and DFS, cross-checking
/// their outputs. Returns an error describing the first divergence — a
/// correctness failure, not a measurement artifact — so callers (CI's
/// perf-smoke step) can fail loudly.
pub fn igoodlock_bench_row(
    workload: &str,
    relation: &LockDependencyRelation,
    reps: u32,
) -> Result<IGoodlockBenchRow, String> {
    let options = IGoodlockOptions::default();
    // One untimed warmup of the first implementation measured: on
    // microsecond-scale rows the process's first join call pays one-time
    // allocator and code-path costs that would otherwise be billed to
    // whichever implementation happens to run first.
    let _ = igoodlock_with_stats(relation, &options);
    let ((indexed_cycles, indexed_stats), indexed_ms) =
        time_best_of(reps, || igoodlock_with_stats(relation, &options));
    let ((naive_cycles, naive_stats), naive_ms) =
        time_best_of(reps, || naive_igoodlock_with_stats(relation, &options));
    let ((dfs_cycles, dfs_stats), dfs_ms) = time_best_of(reps, || goodlock_dfs(relation, &options));
    let ((parallel_cycles, parallel_stats, _), parallel_ms) = time_best_of(reps, || {
        igoodlock_parallel(relation, None, &options, PARALLEL_COLUMN_JOBS)
    });
    if parallel_cycles != indexed_cycles || parallel_stats != indexed_stats {
        return Err(format!(
            "{workload}: parallel join (jobs={PARALLEL_COLUMN_JOBS}) diverged from \
             the sequential indexed join ({} vs {} cycles)",
            parallel_cycles.len(),
            indexed_cycles.len()
        ));
    }
    if indexed_cycles != naive_cycles {
        return Err(format!(
            "{workload}: indexed and naive cycle reports differ \
             ({} vs {} cycles)",
            indexed_cycles.len(),
            naive_cycles.len()
        ));
    }
    if indexed_stats.chains_built != naive_stats.chains_built {
        return Err(format!(
            "{workload}: chains_built diverged (indexed {} vs naive {})",
            indexed_stats.chains_built, naive_stats.chains_built
        ));
    }
    if cycle_set(&dfs_cycles) != cycle_set(&indexed_cycles) {
        return Err(format!(
            "{workload}: DFS baseline cycle set differs \
             ({} vs {} cycles)",
            dfs_cycles.len(),
            indexed_cycles.len()
        ));
    }
    Ok(IGoodlockBenchRow {
        workload: workload.to_string(),
        relation_size: relation.len(),
        cycles: indexed_cycles.len(),
        naive_ms,
        indexed_ms,
        dfs_ms,
        parallel_ms,
        speedup: naive_ms / indexed_ms.max(1e-9),
        chains_built: indexed_stats.chains_built,
        naive_candidates_examined: naive_stats.join_candidates_examined,
        indexed_candidates_examined: indexed_stats.join_candidates_examined,
        dfs_extensions: dfs_stats.extensions,
    })
}

/// The lowest `speedup` a bench row may report before the sweep fails.
/// Small relations now dispatch to the naive join directly (the
/// index-construction fast path), so indexed can never structurally lose
/// to naive; what remains is wall-clock noise on microsecond-scale rows.
/// Rows too fast to time reliably get a looser floor.
fn min_row_speedup(naive_ms: f64) -> f64 {
    if naive_ms >= 0.05 {
        0.9
    } else {
        0.7
    }
}

/// The full sweep behind `BENCH_igoodlock.json`: a philosophers ring per
/// entry of `ring_sizes`, plus one large synthetic relation of
/// `pairs` two-cycles and `noise` acyclic tuples. Fails if any row's
/// indexed join regresses below the naive join (see [`min_row_speedup`])
/// — the guard that caught small rings paying index-construction cost
/// for buckets they never amortized.
pub fn igoodlock_bench(
    ring_sizes: &[u32],
    pairs: u32,
    noise: u32,
    reps: u32,
) -> Result<Vec<IGoodlockBenchRow>, String> {
    let mut rows = Vec::new();
    for &n in ring_sizes {
        let rel = philosophers_ring_relation(n);
        rows.push(igoodlock_bench_row(&format!("ring-{n}"), &rel, reps)?);
    }
    let rel = synthetic_join_relation(pairs, noise);
    rows.push(igoodlock_bench_row(
        &format!("synthetic-{pairs}x{noise}"),
        &rel,
        reps,
    )?);
    for row in &rows {
        let floor = min_row_speedup(row.naive_ms);
        if row.speedup < floor {
            return Err(format!(
                "{}: indexed join regressed below naive ({:.2}x < {floor}x floor; \
                 naive {:.3}ms, indexed {:.3}ms)",
                row.workload, row.speedup, row.naive_ms, row.indexed_ms
            ));
        }
    }
    Ok(rows)
}

/// One row of the `join_parallel` envelope: a workload joined with the
/// sharded parallel Phase I join at one `jobs` value, cross-checked
/// byte-for-byte against the sequential indexed join before emission.
#[derive(Clone, Debug, Serialize)]
pub struct JoinParallelRow {
    /// Workload label (`ring-12`, `synthetic-96x16384`).
    pub workload: String,
    /// Deduplicated tuples in the relation.
    pub relation_size: usize,
    /// Worker count handed to [`igoodlock_parallel`].
    pub jobs: usize,
    /// Potential deadlock cycles found (identical across jobs values).
    pub cycles: usize,
    /// Best-of-reps wall time of the sequential indexed join, ms.
    pub indexed_ms: f64,
    /// Best-of-reps wall time of the parallel join at `jobs`, ms.
    pub parallel_ms: f64,
    /// `indexed_ms / parallel_ms`.
    pub speedup: f64,
    /// Chains built — asserted identical to the sequential join.
    pub chains_built: u64,
    /// Join candidates examined — asserted identical to the sequential
    /// join.
    pub candidates_examined: u64,
    /// Frontier chunks executed by the parallel scheduler (scheduling
    /// observability; varies with `jobs`).
    pub tasks_executed: u64,
    /// Drained-queue observations by join workers (varies with `jobs`).
    pub steal_waits: u64,
}

/// Measures one workload under the parallel join at each `jobs` value,
/// asserting byte-identical cycle reports and identical join stats
/// against the sequential indexed join (and, once per workload, the
/// naive oracle). Returns one row per `jobs` value.
pub fn join_parallel_rows(
    workload: &str,
    relation: &LockDependencyRelation,
    reps: u32,
    jobs_list: &[usize],
) -> Result<Vec<JoinParallelRow>, String> {
    let options = IGoodlockOptions::default();
    let _ = igoodlock_with_stats(relation, &options); // untimed warmup
    let ((seq_cycles, seq_stats), indexed_ms) =
        time_best_of(reps, || igoodlock_with_stats(relation, &options));
    let (naive_cycles, naive_stats) = naive_igoodlock_with_stats(relation, &options);
    if seq_cycles != naive_cycles || seq_stats.chains_built != naive_stats.chains_built {
        return Err(format!(
            "{workload}: sequential indexed join diverged from the naive oracle \
             ({} vs {} cycles)",
            seq_cycles.len(),
            naive_cycles.len()
        ));
    }
    let seq_bytes = serde_json::to_string(&seq_cycles).expect("cycles serialize");
    let mut rows = Vec::new();
    for &jobs in jobs_list {
        let ((cycles, stats, pstats), parallel_ms) =
            time_best_of(reps, || igoodlock_parallel(relation, None, &options, jobs));
        let bytes = serde_json::to_string(&cycles).expect("cycles serialize");
        if bytes != seq_bytes {
            return Err(format!(
                "{workload}: parallel join at jobs={jobs} produced a different \
                 cycle report than the sequential indexed join"
            ));
        }
        if stats != seq_stats {
            return Err(format!(
                "{workload}: parallel join at jobs={jobs} diverged on join stats \
                 (chains_built {} vs {}, candidates {} vs {})",
                stats.chains_built,
                seq_stats.chains_built,
                stats.join_candidates_examined,
                seq_stats.join_candidates_examined
            ));
        }
        rows.push(JoinParallelRow {
            workload: workload.to_string(),
            relation_size: relation.len(),
            jobs,
            cycles: cycles.len(),
            indexed_ms,
            parallel_ms,
            speedup: indexed_ms / parallel_ms.max(1e-9),
            chains_built: stats.chains_built,
            candidates_examined: stats.join_candidates_examined,
            tasks_executed: pstats.tasks_executed,
            steal_waits: pstats.steal_waits,
        });
    }
    Ok(rows)
}

/// The `join_parallel` envelope sweep: every philosophers ring, the
/// standard synthetic relation, and a scaled synthetic relation at
/// `2 * pairs` two-cycles over `4 * noise` acyclic tuples (the workload
/// the jobs=4 speedup acceptance is measured on), each under every
/// entry of `jobs_list`.
pub fn join_parallel_bench(
    ring_sizes: &[u32],
    pairs: u32,
    noise: u32,
    reps: u32,
    jobs_list: &[usize],
) -> Result<Vec<JoinParallelRow>, String> {
    let mut rows = Vec::new();
    for &n in ring_sizes {
        let rel = philosophers_ring_relation(n);
        rows.extend(join_parallel_rows(
            &format!("ring-{n}"),
            &rel,
            reps,
            jobs_list,
        )?);
    }
    for (pairs, noise) in [(pairs, noise), (2 * pairs, 4 * noise)] {
        let rel = synthetic_join_relation(pairs, noise);
        rows.extend(join_parallel_rows(
            &format!("synthetic-{pairs}x{noise}"),
            &rel,
            reps,
            jobs_list,
        )?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_relation_has_one_full_cycle() {
        for n in [4u32, 7] {
            let rel = philosophers_ring_relation(n);
            assert_eq!(rel.len(), n as usize);
            let (cycles, _) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            assert_eq!(cycles.len(), 1, "ring-{n} has exactly the full ring");
            assert_eq!(cycles[0].len(), n as usize);
        }
    }

    #[test]
    fn bench_rows_pass_parity_at_small_size() {
        let rows = igoodlock_bench(&[4, 6], 4, 32, 3).expect("parity holds");
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.cycles > 0);
            assert!(row.chains_built >= row.relation_size as u64);
            assert!(row.indexed_candidates_examined <= row.naive_candidates_examined);
            assert!(row.parallel_ms > 0.0);
        }
        assert_eq!(rows[2].cycles, 4);
    }

    #[test]
    fn join_parallel_rows_pass_parity_across_jobs() {
        // pairs=4 + noise=128 gives a 136-tuple relation: wide enough
        // that the parallel join actually fans out across workers
        // instead of delegating to the sequential path.
        let rows = join_parallel_bench(&[6], 4, 32, 1, &[1, 2, 4]).expect("parity holds");
        assert_eq!(rows.len(), 3 * 3, "3 workloads x 3 jobs values");
        let big: Vec<_> = rows
            .iter()
            .filter(|r| r.workload == "synthetic-8x128")
            .collect();
        assert_eq!(big.len(), 3);
        assert!(big[0].relation_size >= 64, "{}", big[0].relation_size);
        for r in &big {
            assert_eq!(r.cycles, big[0].cycles);
            assert_eq!(r.chains_built, big[0].chains_built);
            assert_eq!(r.candidates_examined, big[0].candidates_examined);
        }
        let fanned = big.iter().find(|r| r.jobs == 4).expect("jobs=4 row");
        assert!(
            fanned.tasks_executed > 1,
            "jobs=4 on a wide frontier must execute several chunks: {}",
            fanned.tasks_executed
        );
    }
}
