//! Phase I micro-bench: naive vs indexed iGoodlock vs the DFS baseline.
//!
//! Workloads are pure lock dependency relations (no scheduler, no program
//! execution), so the numbers isolate the cycle computation itself — the
//! paper's Table 2 flavor of comparison, plus our naive-vs-indexed
//! column. Every row cross-checks the three implementations before it is
//! reported: naive and indexed must agree exactly (same cycles, same
//! order, same `chains_built`), and the DFS baseline must report the
//! same cycle set.

use std::collections::BTreeSet;
use std::time::Instant;

use df_events::{Label, ObjId, ThreadId};
use df_igoodlock::{
    goodlock_dfs, igoodlock_with_stats, naive_igoodlock_with_stats, IGoodlockOptions, LockDep,
    LockDependencyRelation,
};
use serde::Serialize;

/// The lock dependency relation that Phase I extracts from an n-way
/// dining-philosophers ring: philosopher `p` (thread `p + 1`) acquires
/// fork `(p + 1) mod n` while holding fork `p`. The relation contains one
/// potential deadlock cycle — the full ring of length `n`.
pub fn philosophers_ring_relation(n: u32) -> LockDependencyRelation {
    let fork = |i: u32| ObjId::new(100 + (i % n));
    let deps = (0..n)
        .map(|p| {
            LockDep::exclusive(
                ThreadId::new(p + 1),
                ObjId::new(p + 1),
                vec![fork(p)],
                fork(p + 1),
                vec![
                    Label::new(&format!("Philosopher.takeLeft:{p}")),
                    Label::new(&format!("Philosopher.takeRight:{p}")),
                ],
            )
        })
        .collect();
    LockDependencyRelation::from_deps(deps)
}

/// A relation with `pairs` two-cycles plus `noise` acyclic tuples —
/// the "large synthetic relation" workload. The noise tuples are strictly
/// ordered chains that can never close, so the cycle count stays `pairs`
/// while the naive join's per-chain scan cost grows with the whole
/// relation.
pub fn synthetic_join_relation(pairs: u32, noise: u32) -> LockDependencyRelation {
    let mut deps = Vec::new();
    for p in 0..pairs {
        let l1 = ObjId::new(1000 + 2 * p);
        let l2 = ObjId::new(1001 + 2 * p);
        let c = Label::new(&format!("pair{p}"));
        deps.push(LockDep::exclusive(
            ThreadId::new(1),
            ObjId::new(1),
            vec![l1],
            l2,
            vec![c, c],
        ));
        deps.push(LockDep::exclusive(
            ThreadId::new(2),
            ObjId::new(2),
            vec![l2],
            l1,
            vec![c, c],
        ));
    }
    for n in 0..noise {
        // Strictly ordered chain: never cyclic.
        let a = ObjId::new(5000 + n);
        let b = ObjId::new(5001 + n);
        deps.push(LockDep::exclusive(
            ThreadId::new(3 + n % 4),
            ObjId::new(3 + n % 4),
            vec![a],
            b,
            vec![Label::new(&format!("noise{n}")), Label::new("inner")],
        ));
    }
    LockDependencyRelation::from_deps(deps)
}

/// One row of `BENCH_igoodlock.json`: a workload measured under all three
/// cycle-computation implementations.
#[derive(Clone, Debug, Serialize)]
pub struct IGoodlockBenchRow {
    /// Workload label (`ring-12`, `synthetic-48x4096`).
    pub workload: String,
    /// Deduplicated tuples in the relation.
    pub relation_size: usize,
    /// Potential deadlock cycles found (identical across implementations).
    pub cycles: usize,
    /// Best-of-reps wall time of the naive join, milliseconds.
    pub naive_ms: f64,
    /// Best-of-reps wall time of the indexed join, milliseconds.
    pub indexed_ms: f64,
    /// Best-of-reps wall time of the DFS lock-graph baseline, milliseconds.
    pub dfs_ms: f64,
    /// `naive_ms / indexed_ms`.
    pub speedup: f64,
    /// Chains built by the join — asserted identical between naive and
    /// indexed before the row is emitted.
    pub chains_built: u64,
    /// Candidate tuples the naive join examined (`|D|` per open chain).
    pub naive_candidates_examined: u64,
    /// Candidate tuples the indexed join examined (bucket entries only).
    pub indexed_candidates_examined: u64,
    /// Chain extensions attempted by the DFS baseline.
    pub dfs_extensions: u64,
}

fn time_best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

fn cycle_set(cycles: &[df_igoodlock::Cycle]) -> BTreeSet<String> {
    cycles.iter().map(|c| c.to_string()).collect()
}

/// Measures one workload under naive, indexed and DFS, cross-checking
/// their outputs. Returns an error describing the first divergence — a
/// correctness failure, not a measurement artifact — so callers (CI's
/// perf-smoke step) can fail loudly.
pub fn igoodlock_bench_row(
    workload: &str,
    relation: &LockDependencyRelation,
    reps: u32,
) -> Result<IGoodlockBenchRow, String> {
    let options = IGoodlockOptions::default();
    let ((indexed_cycles, indexed_stats), indexed_ms) =
        time_best_of(reps, || igoodlock_with_stats(relation, &options));
    let ((naive_cycles, naive_stats), naive_ms) =
        time_best_of(reps, || naive_igoodlock_with_stats(relation, &options));
    let ((dfs_cycles, dfs_stats), dfs_ms) = time_best_of(reps, || goodlock_dfs(relation, &options));
    if indexed_cycles != naive_cycles {
        return Err(format!(
            "{workload}: indexed and naive cycle reports differ \
             ({} vs {} cycles)",
            indexed_cycles.len(),
            naive_cycles.len()
        ));
    }
    if indexed_stats.chains_built != naive_stats.chains_built {
        return Err(format!(
            "{workload}: chains_built diverged (indexed {} vs naive {})",
            indexed_stats.chains_built, naive_stats.chains_built
        ));
    }
    if cycle_set(&dfs_cycles) != cycle_set(&indexed_cycles) {
        return Err(format!(
            "{workload}: DFS baseline cycle set differs \
             ({} vs {} cycles)",
            dfs_cycles.len(),
            indexed_cycles.len()
        ));
    }
    Ok(IGoodlockBenchRow {
        workload: workload.to_string(),
        relation_size: relation.len(),
        cycles: indexed_cycles.len(),
        naive_ms,
        indexed_ms,
        dfs_ms,
        speedup: naive_ms / indexed_ms.max(1e-9),
        chains_built: indexed_stats.chains_built,
        naive_candidates_examined: naive_stats.join_candidates_examined,
        indexed_candidates_examined: indexed_stats.join_candidates_examined,
        dfs_extensions: dfs_stats.extensions,
    })
}

/// The full sweep behind `BENCH_igoodlock.json`: a philosophers ring per
/// entry of `ring_sizes`, plus one large synthetic relation of
/// `pairs` two-cycles and `noise` acyclic tuples.
pub fn igoodlock_bench(
    ring_sizes: &[u32],
    pairs: u32,
    noise: u32,
    reps: u32,
) -> Result<Vec<IGoodlockBenchRow>, String> {
    let mut rows = Vec::new();
    for &n in ring_sizes {
        let rel = philosophers_ring_relation(n);
        rows.push(igoodlock_bench_row(&format!("ring-{n}"), &rel, reps)?);
    }
    let rel = synthetic_join_relation(pairs, noise);
    rows.push(igoodlock_bench_row(
        &format!("synthetic-{pairs}x{noise}"),
        &rel,
        reps,
    )?);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_relation_has_one_full_cycle() {
        for n in [4u32, 7] {
            let rel = philosophers_ring_relation(n);
            assert_eq!(rel.len(), n as usize);
            let (cycles, _) = igoodlock_with_stats(&rel, &IGoodlockOptions::default());
            assert_eq!(cycles.len(), 1, "ring-{n} has exactly the full ring");
            assert_eq!(cycles[0].len(), n as usize);
        }
    }

    #[test]
    fn bench_rows_pass_parity_at_small_size() {
        let rows = igoodlock_bench(&[4, 6], 4, 32, 1).expect("parity holds");
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.cycles > 0);
            assert!(row.chains_built >= row.relation_size as u64);
            assert!(row.indexed_candidates_examined <= row.naive_candidates_examined);
        }
        assert_eq!(rows[2].cycles, 4);
    }
}
