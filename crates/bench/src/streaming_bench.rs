//! Streaming Phase I memory/throughput bench: the offline path (record
//! the full event vector, build the relation post-hoc) vs the streaming
//! path (a [`RelationBuilder`] sink, no event vector) on real benchmark
//! programs. Each row cross-checks that the two paths produce a
//! byte-identical relation before it is reported, so the artifact can
//! never publish numbers for diverging implementations.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use deadlock_fuzzer::ProgramRef;
use df_fuzzer::SimpleRandomChecker;
use df_igoodlock::{LockDependencyRelation, RelationBuilder};
use df_runtime::{RunConfig, VirtualRuntime};
use serde::Serialize;

/// One streaming row of `BENCH_igoodlock.json`: a benchmark program run
/// through Phase I's two observation paths.
#[derive(Clone, Debug, Serialize)]
pub struct StreamingBenchRow {
    /// Benchmark program name.
    pub workload: String,
    /// Events in the execution (identical across paths by construction).
    pub events: u64,
    /// Deduplicated tuples in the relation.
    pub relation_size: usize,
    /// Best-of-reps wall time of the offline path (record + `from_trace`),
    /// milliseconds.
    pub offline_ms: f64,
    /// Best-of-reps wall time of the streaming path (builder sink,
    /// `record_trace` off), milliseconds.
    pub streamed_ms: f64,
    /// High-water mark of the materialized event vector on the offline
    /// path, bytes.
    pub offline_peak_trace_bytes: u64,
    /// Same high-water mark on the streaming path — zero by design.
    pub streamed_peak_trace_bytes: u64,
}

fn seeded_run(program: &ProgramRef, seed: u64, config: RunConfig) -> df_runtime::RunResult {
    let p = program.clone();
    VirtualRuntime::new(config.with_program_seed(seed))
        .run(Box::new(SimpleRandomChecker::with_seed(seed)), move |ctx| {
            p.run(ctx)
        })
}

/// Measures one program under both observation paths, cross-checking the
/// relations. Returns an error on divergence — a correctness failure the
/// caller should turn into a non-zero exit.
pub fn streaming_bench_row(
    workload: &str,
    program: &ProgramRef,
    seed: u64,
    reps: u32,
) -> Result<StreamingBenchRow, String> {
    let mut offline_ms = f64::INFINITY;
    let mut streamed_ms = f64::INFINITY;
    let mut offline: Option<(LockDependencyRelation, u64, u64)> = None;
    let mut streamed: Option<(LockDependencyRelation, u64)> = None;
    for _ in 0..reps.max(1) {
        let obs = df_obs::Obs::new();
        let start = Instant::now();
        let result = seeded_run(program, seed, RunConfig::default().with_obs(obs.clone()));
        let relation = LockDependencyRelation::from_trace(&result.trace);
        offline_ms = offline_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let snap = obs.counters().snapshot();
        offline = Some((
            relation,
            result.trace.events().len() as u64,
            snap.peak_trace_bytes,
        ));

        let obs = df_obs::Obs::new();
        let builder = Arc::new(Mutex::new(RelationBuilder::new()));
        let start = Instant::now();
        let result = seeded_run(
            program,
            seed,
            RunConfig::default()
                .with_record_trace(false)
                .with_obs(obs.clone())
                .with_event_sink(df_events::SinkHandle::single(builder.clone())),
        );
        let relation = builder.lock().expect("builder sink").take();
        streamed_ms = streamed_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if !result.trace.events().is_empty() {
            return Err(format!("{workload}: streaming path materialized events"));
        }
        streamed = Some((relation, obs.counters().snapshot().peak_trace_bytes));
    }
    let (offline_relation, events, offline_peak) = offline.expect("reps >= 1");
    let (streamed_relation, streamed_peak) = streamed.expect("reps >= 1");
    let a = serde_json::to_string(&offline_relation).map_err(|e| e.to_string())?;
    let b = serde_json::to_string(&streamed_relation).map_err(|e| e.to_string())?;
    if a != b {
        return Err(format!(
            "{workload}: offline and streamed relations differ \
             ({} vs {} tuples)",
            offline_relation.len(),
            streamed_relation.len()
        ));
    }
    if streamed_peak != 0 {
        return Err(format!(
            "{workload}: streaming path reported a non-zero trace peak \
             ({streamed_peak} bytes)"
        ));
    }
    Ok(StreamingBenchRow {
        workload: workload.to_string(),
        events,
        relation_size: offline_relation.len(),
        offline_ms,
        streamed_ms,
        offline_peak_trace_bytes: offline_peak,
        streamed_peak_trace_bytes: streamed_peak,
    })
}

/// The streaming sweep: every Table 1 benchmark plus a wide
/// dining-philosophers ring (the most event-dense model we have).
pub fn streaming_bench(seed: u64, reps: u32) -> Result<Vec<StreamingBenchRow>, String> {
    let mut rows = Vec::new();
    for bench in df_benchmarks::table1_suite() {
        rows.push(streaming_bench_row(bench.name, &bench.program, seed, reps)?);
    }
    let ring = df_benchmarks::dining_philosophers::program(9);
    rows.push(streaming_bench_row("philosophers-9", &ring, seed, reps)?);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cross_check_and_report_zero_streamed_peak() {
        let rows = streaming_bench(7, 1).expect("paths agree");
        assert_eq!(rows.len(), 11);
        for row in &rows {
            assert!(row.events > 0, "{}", row.workload);
            assert_eq!(row.streamed_peak_trace_bytes, 0, "{}", row.workload);
            assert!(
                row.offline_peak_trace_bytes > 0,
                "{}: offline path must materialize",
                row.workload
            );
        }
    }
}
