//! `igoodlock_bench` — measures Phase I's cycle computation in isolation
//! (the naive join, the indexed join, and the DFS lock-graph baseline on
//! the same relations), Phase I's two observation paths (offline trace
//! recording vs the streaming relation builder), and trace I/O
//! throughput (JSONL v1 vs binary v2, offline vs ring-streamed), with
//! output parity cross-checked per row.
//!
//! ```text
//! cargo run --release -p df-bench --bin igoodlock_bench
//! cargo run --release -p df-bench --bin igoodlock_bench -- \
//!     --sizes 4,8,12,16 --pairs 48 --noise 4096 --reps 3 --jobs 1,2,4 \
//!     --min-parallel-speedup 2.5 --trace-events 1000000 \
//!     --precision-trials 20 --out BENCH_igoodlock.json
//! ```
//!
//! The `join_parallel` sweep runs the sharded parallel join at every
//! `--jobs` value over the rings, the standard synthetic relation, and a
//! scaled synthetic relation (`2x` pairs, `4x` noise), asserting
//! byte-identical cycle reports and identical join stats against the
//! sequential indexed join. `--min-parallel-speedup` additionally gates
//! the scaled workload's speedup at the largest jobs value — skipped
//! (with a note) on hosts with fewer hardware threads than jobs, where
//! no real speedup is physically possible.
//!
//! The `precision` envelope runs every Table 1 benchmark twice — a
//! uniform Phase II campaign and the feasibility-seeded adaptive one —
//! and gates two contracts: no `Infeasible`-scored cycle is ever
//! confirmed by a trial (soundness), and both campaigns confirm the same
//! cycle set (parity). `--precision-trials` sets the per-cycle ceiling.
//!
//! Exits non-zero if any implementation pair disagrees on cycles,
//! `chains_built`, or the streamed relation, or if a precision contract
//! is broken — a correctness failure, which CI's perf-smoke step turns
//! into a red build.

use df_bench::{
    igoodlock_bench, join_parallel_bench, precision_bench, streaming_bench, trace_io_bench_rows,
    IGoodlockBenchRow, JoinParallelRow, PrecisionRow, StreamingBenchRow, TraceIoBenchRow,
};
use serde::Serialize;

/// The envelope written to `BENCH_igoodlock.json`: the join comparison,
/// the parallel-join jobs sweep, the streaming memory/throughput
/// comparison, the trace I/O throughput comparison, and the precision
/// envelope (predicted-vs-confirmed rates per Table 1 benchmark) — one
/// file so CI uploads a single artifact.
#[derive(Serialize)]
struct BenchArtifact {
    join: Vec<IGoodlockBenchRow>,
    join_parallel: Vec<JoinParallelRow>,
    streaming: Vec<StreamingBenchRow>,
    trace_io: Vec<TraceIoBenchRow>,
    precision: Vec<PrecisionRow>,
}

struct Args {
    sizes: Vec<u32>,
    pairs: u32,
    noise: u32,
    reps: u32,
    jobs: Vec<usize>,
    min_parallel_speedup: f64,
    trace_events: u64,
    precision_trials: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut sizes = vec![4u32, 8, 12, 16];
    let mut pairs = 48u32;
    let mut noise = 4096u32;
    let mut reps = 3u32;
    let mut jobs = vec![1usize, 2, 4];
    let mut min_parallel_speedup = 0.0f64;
    let mut trace_events = 1_000_000u64;
    let mut precision_trials = 20u32;
    let mut out = String::from("BENCH_igoodlock.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                sizes = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--sizes needs numbers"))
                            .collect()
                    })
                    .expect("--sizes needs a comma-separated list");
            }
            "--pairs" => {
                pairs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs needs a number");
            }
            "--noise" => {
                noise = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--noise needs a number");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--jobs needs numbers"))
                            .collect()
                    })
                    .expect("--jobs needs a comma-separated list");
            }
            "--min-parallel-speedup" => {
                min_parallel_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-parallel-speedup needs a number");
            }
            "--trace-events" => {
                trace_events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace-events needs a number");
            }
            "--precision-trials" => {
                precision_trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--precision-trials needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        sizes,
        pairs,
        noise,
        reps,
        jobs,
        min_parallel_speedup,
        trace_events,
        precision_trials,
        out,
    }
}

fn print_rows(rows: &[IGoodlockBenchRow]) {
    println!("== Phase I cycle computation: naive vs indexed vs DFS vs parallel ==");
    println!(
        "{:<22} {:>6} {:>7} | {:>10} {:>10} {:>10} {:>10} {:>8} | {:>12} {:>14} {:>14}",
        "workload",
        "|D|",
        "cycles",
        "naive(ms)",
        "index(ms)",
        "dfs(ms)",
        "par4(ms)",
        "speedup",
        "chains",
        "naive cand.",
        "index cand."
    );
    for r in rows {
        println!(
            "{:<22} {:>6} {:>7} | {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.1}x | {:>12} {:>14} {:>14}",
            r.workload,
            r.relation_size,
            r.cycles,
            r.naive_ms,
            r.indexed_ms,
            r.dfs_ms,
            r.parallel_ms,
            r.speedup,
            r.chains_built,
            r.naive_candidates_examined,
            r.indexed_candidates_examined,
        );
    }
    println!(
        "(per row: identical cycles and chains_built across naive/indexed/parallel, \
         identical cycle set from the DFS baseline; times are best of reps)"
    );
}

fn print_parallel_rows(rows: &[JoinParallelRow]) {
    println!();
    println!("== Phase I parallel join: sharded frontier vs sequential indexed ==");
    println!(
        "{:<22} {:>6} {:>5} {:>7} | {:>10} {:>10} {:>8} | {:>12} {:>14} {:>8} {:>8}",
        "workload",
        "|D|",
        "jobs",
        "cycles",
        "index(ms)",
        "par(ms)",
        "speedup",
        "chains",
        "candidates",
        "tasks",
        "waits"
    );
    for r in rows {
        println!(
            "{:<22} {:>6} {:>5} {:>7} | {:>10.3} {:>10.3} {:>7.2}x | {:>12} {:>14} {:>8} {:>8}",
            r.workload,
            r.relation_size,
            r.jobs,
            r.cycles,
            r.indexed_ms,
            r.parallel_ms,
            r.speedup,
            r.chains_built,
            r.candidates_examined,
            r.tasks_executed,
            r.steal_waits,
        );
    }
    println!(
        "(per row: byte-identical cycle report and identical chains_built / \
         candidates_examined vs the sequential indexed join; naive oracle \
         cross-checked once per workload; times are best of reps)"
    );
}

fn print_streaming_rows(rows: &[StreamingBenchRow]) {
    println!();
    println!("== Phase I observation: offline recording vs streaming builder ==");
    println!(
        "{:<22} {:>8} {:>6} | {:>11} {:>11} | {:>14} {:>14}",
        "workload", "events", "|D|", "offline(ms)", "stream(ms)", "offline peak B", "stream peak B"
    );
    for r in rows {
        println!(
            "{:<22} {:>8} {:>6} | {:>11.3} {:>11.3} | {:>14} {:>14}",
            r.workload,
            r.events,
            r.relation_size,
            r.offline_ms,
            r.streamed_ms,
            r.offline_peak_trace_bytes,
            r.streamed_peak_trace_bytes,
        );
    }
    println!(
        "(per row: byte-identical relation across the two paths; the \
         streaming path's trace peak is asserted to be zero)"
    );
}

fn print_trace_io_rows(rows: &[TraceIoBenchRow]) {
    println!();
    println!("== Trace I/O: JSONL v1 vs binary v2, offline vs ring-streamed ==");
    println!(
        "{:<20} {:<16} {:>10} | {:>10} {:>14} | {:>12} {:>8}",
        "workload", "mode", "events", "wall(ms)", "events/sec", "bytes", "B/event"
    );
    for r in rows {
        println!(
            "{:<20} {:<16} {:>10} | {:>10.3} {:>14.0} | {:>12} {:>8.2}",
            r.workload, r.mode, r.events, r.wall_ms, r.events_per_sec, r.bytes, r.bytes_per_event,
        );
    }
    println!(
        "(per workload: streamed output byte-identical to offline output per \
         format, binary decodes back to the source trace; times are best of reps)"
    );
}

fn print_precision_rows(rows: &[PrecisionRow]) {
    println!();
    println!("== Precision: feasibility verdicts vs Phase II confirmation ==");
    println!(
        "{:<20} {:>6} {:>5} {:>6} {:>4} | {:>8} {:>8} {:>5} | {:>8} {:>8} {:>7}",
        "benchmark",
        "cycles",
        "feas",
        "infeas",
        "unk",
        "conf(u)",
        "conf(a)",
        "same",
        "trials-u",
        "trials-a",
        "saved"
    );
    for r in rows {
        println!(
            "{:<20} {:>6} {:>5} {:>6} {:>4} | {:>8} {:>8} {:>5} | {:>8} {:>8} {:>7}",
            r.name,
            r.cycles,
            r.feasible,
            r.infeasible,
            r.unknown,
            r.confirmed_uniform,
            r.confirmed_adaptive,
            if r.same_cycle_set { "yes" } else { "NO" },
            r.trials_uniform,
            r.trials_adaptive,
            r.trials_saved,
        );
    }
    println!(
        "(per row: uniform and adaptive campaigns run the same seeded \
         pipeline; `same` gates that both confirm the same cycle set)"
    );
}

/// Fails the bench if the precision layer broke either of its contracts:
/// a cycle scored `Infeasible` was confirmed by a real trial (soundness),
/// or the uncapped adaptive campaign confirmed a different cycle set than
/// the uniform one (parity).
fn enforce_precision(rows: &[PrecisionRow]) {
    let mut failed = false;
    for r in rows {
        if r.infeasible_confirmed > 0 {
            eprintln!(
                "precision gate: {} confirmed {} cycle(s) scored Infeasible \
                 — the feasibility check is unsound",
                r.name, r.infeasible_confirmed
            );
            failed = true;
        }
        if !r.same_cycle_set {
            eprintln!(
                "precision gate: {} — adaptive campaign confirmed a \
                 different cycle set than the uniform campaign \
                 (uniform {}, adaptive {})",
                r.name, r.confirmed_uniform, r.confirmed_adaptive
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Enforces `--min-parallel-speedup` on the scaled synthetic workload at
/// the largest requested jobs value. The gate only applies when the host
/// actually has that many hardware threads — a single-core runner cannot
/// speed anything up, so it records honest numbers and skips the gate
/// (parity is still enforced unconditionally by `join_parallel_bench`).
fn enforce_parallel_speedup(rows: &[JoinParallelRow], args: &Args) {
    if args.min_parallel_speedup <= 0.0 {
        return;
    }
    let Some(&jobs) = args.jobs.iter().max() else {
        return;
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < jobs {
        println!(
            "(skipping --min-parallel-speedup {} gate: host has {cores} hardware \
             thread(s), gate needs >= {jobs})",
            args.min_parallel_speedup
        );
        return;
    }
    let workload = format!("synthetic-{}x{}", 2 * args.pairs, 4 * args.noise);
    let Some(row) = rows
        .iter()
        .find(|r| r.workload == workload && r.jobs == jobs)
    else {
        eprintln!("speedup gate: no row for {workload} at jobs={jobs}");
        std::process::exit(1);
    };
    if row.speedup < args.min_parallel_speedup {
        eprintln!(
            "speedup gate: {workload} at jobs={jobs} reached {:.2}x, \
             required {:.2}x",
            row.speedup, args.min_parallel_speedup
        );
        std::process::exit(1);
    }
    println!(
        "(speedup gate passed: {workload} at jobs={jobs} reached {:.2}x >= {:.2}x)",
        row.speedup, args.min_parallel_speedup
    );
}

fn main() {
    let args = parse_args();
    let join = match igoodlock_bench(&args.sizes, args.pairs, args.noise, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_rows(&join);
    let join_parallel =
        match join_parallel_bench(&args.sizes, args.pairs, args.noise, args.reps, &args.jobs) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("parity failure: {e}");
                std::process::exit(1);
            }
        };
    print_parallel_rows(&join_parallel);
    enforce_parallel_speedup(&join_parallel, &args);
    let streaming = match streaming_bench(7, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_streaming_rows(&streaming);
    let trace_io = match trace_io_bench_rows(args.trace_events, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_trace_io_rows(&trace_io);
    let precision = precision_bench(args.precision_trials);
    print_precision_rows(&precision);
    enforce_precision(&precision);
    let artifact = BenchArtifact {
        join,
        join_parallel,
        streaming,
        trace_io,
        precision,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write bench artifact");
    println!("wrote {}", args.out);
}
