//! `igoodlock_bench` — measures Phase I's cycle computation in isolation
//! (the naive join, the indexed join, and the DFS lock-graph baseline on
//! the same relations), Phase I's two observation paths (offline trace
//! recording vs the streaming relation builder), and trace I/O
//! throughput (JSONL v1 vs binary v2, offline vs ring-streamed), with
//! output parity cross-checked per row.
//!
//! ```text
//! cargo run --release -p df-bench --bin igoodlock_bench
//! cargo run --release -p df-bench --bin igoodlock_bench -- \
//!     --sizes 4,8,12,16 --pairs 48 --noise 4096 --reps 3 \
//!     --trace-events 1000000 --out BENCH_igoodlock.json
//! ```
//!
//! Exits non-zero if any implementation pair disagrees on cycles,
//! `chains_built`, or the streamed relation — a correctness failure,
//! which CI's perf-smoke step turns into a red build.

use df_bench::{
    igoodlock_bench, streaming_bench, trace_io_bench_rows, IGoodlockBenchRow, StreamingBenchRow,
    TraceIoBenchRow,
};
use serde::Serialize;

/// The envelope written to `BENCH_igoodlock.json`: the join comparison,
/// the streaming memory/throughput comparison, and the trace I/O
/// throughput comparison — one file so CI uploads a single artifact.
#[derive(Serialize)]
struct BenchArtifact {
    join: Vec<IGoodlockBenchRow>,
    streaming: Vec<StreamingBenchRow>,
    trace_io: Vec<TraceIoBenchRow>,
}

struct Args {
    sizes: Vec<u32>,
    pairs: u32,
    noise: u32,
    reps: u32,
    trace_events: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut sizes = vec![4u32, 8, 12, 16];
    let mut pairs = 48u32;
    let mut noise = 4096u32;
    let mut reps = 3u32;
    let mut trace_events = 1_000_000u64;
    let mut out = String::from("BENCH_igoodlock.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                sizes = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--sizes needs numbers"))
                            .collect()
                    })
                    .expect("--sizes needs a comma-separated list");
            }
            "--pairs" => {
                pairs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs needs a number");
            }
            "--noise" => {
                noise = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--noise needs a number");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--trace-events" => {
                trace_events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace-events needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        sizes,
        pairs,
        noise,
        reps,
        trace_events,
        out,
    }
}

fn print_rows(rows: &[IGoodlockBenchRow]) {
    println!("== Phase I cycle computation: naive vs indexed vs DFS ==");
    println!(
        "{:<22} {:>6} {:>7} | {:>10} {:>10} {:>10} {:>8} | {:>12} {:>14} {:>14}",
        "workload",
        "|D|",
        "cycles",
        "naive(ms)",
        "index(ms)",
        "dfs(ms)",
        "speedup",
        "chains",
        "naive cand.",
        "index cand."
    );
    for r in rows {
        println!(
            "{:<22} {:>6} {:>7} | {:>10.3} {:>10.3} {:>10.3} {:>7.1}x | {:>12} {:>14} {:>14}",
            r.workload,
            r.relation_size,
            r.cycles,
            r.naive_ms,
            r.indexed_ms,
            r.dfs_ms,
            r.speedup,
            r.chains_built,
            r.naive_candidates_examined,
            r.indexed_candidates_examined,
        );
    }
    println!(
        "(per row: identical cycles and chains_built across naive/indexed, \
         identical cycle set from the DFS baseline; times are best of reps)"
    );
}

fn print_streaming_rows(rows: &[StreamingBenchRow]) {
    println!();
    println!("== Phase I observation: offline recording vs streaming builder ==");
    println!(
        "{:<22} {:>8} {:>6} | {:>11} {:>11} | {:>14} {:>14}",
        "workload", "events", "|D|", "offline(ms)", "stream(ms)", "offline peak B", "stream peak B"
    );
    for r in rows {
        println!(
            "{:<22} {:>8} {:>6} | {:>11.3} {:>11.3} | {:>14} {:>14}",
            r.workload,
            r.events,
            r.relation_size,
            r.offline_ms,
            r.streamed_ms,
            r.offline_peak_trace_bytes,
            r.streamed_peak_trace_bytes,
        );
    }
    println!(
        "(per row: byte-identical relation across the two paths; the \
         streaming path's trace peak is asserted to be zero)"
    );
}

fn print_trace_io_rows(rows: &[TraceIoBenchRow]) {
    println!();
    println!("== Trace I/O: JSONL v1 vs binary v2, offline vs ring-streamed ==");
    println!(
        "{:<20} {:<16} {:>10} | {:>10} {:>14} | {:>12} {:>8}",
        "workload", "mode", "events", "wall(ms)", "events/sec", "bytes", "B/event"
    );
    for r in rows {
        println!(
            "{:<20} {:<16} {:>10} | {:>10.3} {:>14.0} | {:>12} {:>8.2}",
            r.workload, r.mode, r.events, r.wall_ms, r.events_per_sec, r.bytes, r.bytes_per_event,
        );
    }
    println!(
        "(per workload: streamed output byte-identical to offline output per \
         format, binary decodes back to the source trace; times are best of reps)"
    );
}

fn main() {
    let args = parse_args();
    let join = match igoodlock_bench(&args.sizes, args.pairs, args.noise, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_rows(&join);
    let streaming = match streaming_bench(7, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_streaming_rows(&streaming);
    let trace_io = match trace_io_bench_rows(args.trace_events, args.reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    };
    print_trace_io_rows(&trace_io);
    let artifact = BenchArtifact {
        join,
        streaming,
        trace_io,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write bench artifact");
    println!("wrote {}", args.out);
}
