//! `igoodlock_bench` — measures Phase I's cycle computation in isolation:
//! the naive join, the indexed join, and the DFS lock-graph baseline on
//! the same relations, with output parity cross-checked per row.
//!
//! ```text
//! cargo run --release -p df-bench --bin igoodlock_bench
//! cargo run --release -p df-bench --bin igoodlock_bench -- \
//!     --sizes 4,8,12,16 --pairs 48 --noise 4096 --reps 3 \
//!     --out BENCH_igoodlock.json
//! ```
//!
//! Exits non-zero if any implementation pair disagrees on cycles or
//! `chains_built` — a correctness failure, which CI's perf-smoke step
//! turns into a red build.

use df_bench::{igoodlock_bench, IGoodlockBenchRow};

struct Args {
    sizes: Vec<u32>,
    pairs: u32,
    noise: u32,
    reps: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut sizes = vec![4u32, 8, 12, 16];
    let mut pairs = 48u32;
    let mut noise = 4096u32;
    let mut reps = 3u32;
    let mut out = String::from("BENCH_igoodlock.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                sizes = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--sizes needs numbers"))
                            .collect()
                    })
                    .expect("--sizes needs a comma-separated list");
            }
            "--pairs" => {
                pairs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs needs a number");
            }
            "--noise" => {
                noise = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--noise needs a number");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        sizes,
        pairs,
        noise,
        reps,
        out,
    }
}

fn print_rows(rows: &[IGoodlockBenchRow]) {
    println!("== Phase I cycle computation: naive vs indexed vs DFS ==");
    println!(
        "{:<22} {:>6} {:>7} | {:>10} {:>10} {:>10} {:>8} | {:>12} {:>14} {:>14}",
        "workload",
        "|D|",
        "cycles",
        "naive(ms)",
        "index(ms)",
        "dfs(ms)",
        "speedup",
        "chains",
        "naive cand.",
        "index cand."
    );
    for r in rows {
        println!(
            "{:<22} {:>6} {:>7} | {:>10.3} {:>10.3} {:>10.3} {:>7.1}x | {:>12} {:>14} {:>14}",
            r.workload,
            r.relation_size,
            r.cycles,
            r.naive_ms,
            r.indexed_ms,
            r.dfs_ms,
            r.speedup,
            r.chains_built,
            r.naive_candidates_examined,
            r.indexed_candidates_examined,
        );
    }
    println!(
        "(per row: identical cycles and chains_built across naive/indexed, \
         identical cycle set from the DFS baseline; times are best of reps)"
    );
}

fn main() {
    let args = parse_args();
    match igoodlock_bench(&args.sizes, args.pairs, args.noise, args.reps) {
        Ok(rows) => {
            print_rows(&rows);
            let json = serde_json::to_string_pretty(&rows).expect("serialize");
            std::fs::write(&args.out, json + "\n").expect("write bench artifact");
            println!("wrote {}", args.out);
        }
        Err(e) => {
            eprintln!("parity failure: {e}");
            std::process::exit(1);
        }
    }
}
