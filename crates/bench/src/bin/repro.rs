//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run --release -p df-bench --bin repro -- table1
//! cargo run --release -p df-bench --bin repro -- fig2-runtime
//! cargo run --release -p df-bench --bin repro -- fig2-probability
//! cargo run --release -p df-bench --bin repro -- fig2-thrashing
//! cargo run --release -p df-bench --bin repro -- fig2-correlation
//! cargo run --release -p df-bench --bin repro -- all [--trials N] [--jobs N] [--json]
//! ```
//!
//! The paper uses 100 trials per cycle; the default here is 20 to keep a
//! full regeneration fast — pass `--trials 100` for the paper's setting.

use df_bench::{
    fig2_correlation, figure2_with_jobs, motivation, pearson, table1_with_jobs, Fig2Cell,
    MotivationRow, Table1Row,
};

struct Args {
    experiment: String,
    trials: u32,
    jobs: usize,
    json: bool,
}

fn parse_args() -> Args {
    let mut experiment = String::from("all");
    let mut trials = 20u32;
    let mut jobs = 0usize; // one worker per core
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--json" => json = true,
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        experiment,
        trials,
        jobs,
        json,
    }
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn print_table1(rows: &[Table1Row], json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(rows).expect("serialize"));
        return;
    }
    println!("== Table 1: DeadlockFuzzer results (ours vs paper) ==");
    println!(
        "{:<20} {:>9} | {:>9} {:>9} {:>9} | {:>6} {:>6} {:>6} {:>6} {:>6} | paper: cycles real repro prob thrash",
        "Program", "paperLoC", "norm(ms)", "iGL(ms)", "DF(ms)", "cycles", "repro", "prob", "thrash", "yield"
    );
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
    for r in rows {
        println!(
            "{:<20} {:>9} | {:>9} {:>9} {:>9} | {:>6} {:>6} {:>6} {:>6} {:>6} | {:>10} {:>5} {:>6} {:>5} {:>6}",
            r.name,
            r.paper_loc,
            ms(r.normal),
            ms(r.igoodlock),
            ms(r.df),
            r.cycles,
            r.reproduced,
            opt(r.probability),
            opt(r.avg_thrashes),
            opt(r.avg_yields),
            r.paper_cycles,
            r.paper_real,
            r.paper_reproduced,
            r.paper_probability,
            r.paper_thrashes,
        );
    }
    println!(
        "(baseline control: {} plain runs deadlocked across all benchmarks — paper reports 0/100)",
        rows.iter().map(|r| r.baseline_deadlocks).sum::<u32>()
    );
}

fn print_fig2(cells: &[Fig2Cell], metric: &str, json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(cells).expect("serialize")
        );
        return;
    }
    let benchmarks: Vec<String> = {
        let mut v: Vec<String> = cells.iter().map(|c| c.benchmark.clone()).collect();
        v.dedup();
        v
    };
    let variants: Vec<String> = {
        let mut v = Vec::new();
        for c in cells {
            if !v.contains(&c.variant) {
                v.push(c.variant.clone());
            }
        }
        v
    };
    let title = match metric {
        "runtime" => "Figure 2 (top left): Phase II runtime, normalized to uninstrumented run",
        "probability" => "Figure 2 (top right): probability of reproducing the deadlock",
        "thrashing" => "Figure 2 (bottom left): average thrashings per run",
        _ => "Figure 2",
    };
    println!("== {title} ==");
    print!("{:<28}", "Variant");
    for b in &benchmarks {
        print!(" {b:>18}");
    }
    println!();
    for v in &variants {
        print!("{v:<28}");
        for b in &benchmarks {
            let cell = cells
                .iter()
                .find(|c| &c.variant == v && &c.benchmark == b)
                .expect("cell measured");
            let value = match metric {
                "runtime" => cell.runtime_normalized,
                "probability" => cell.probability,
                "thrashing" => cell.avg_thrashes,
                _ => 0.0,
            };
            print!(" {value:>18.3}");
        }
        println!();
    }
}

fn print_correlation(points: &[(f64, f64)], json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(points).expect("serialize")
        );
        return;
    }
    println!("== Figure 2 (bottom right): thrashings vs reproduction probability ==");
    println!("{:>12} {:>12}", "thrashes", "probability");
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (t, p) in &sorted {
        println!("{t:>12.2} {p:>12.2}");
    }
    println!(
        "Pearson correlation: {:.3} (paper: probability decreases as thrashing increases)",
        pearson(points)
    );
}

fn main() {
    let args = parse_args();
    let known = matches!(
        args.experiment.as_str(),
        "table1"
            | "all"
            | "fig2-runtime"
            | "fig2-probability"
            | "fig2-thrashing"
            | "fig2-correlation"
            | "motivation"
    );
    if !known {
        eprintln!(
            "unknown experiment '{}'; expected table1 | fig2-runtime | fig2-probability | fig2-thrashing | fig2-correlation | all",
            args.experiment
        );
        std::process::exit(2);
    }
    let run_t1 = matches!(args.experiment.as_str(), "table1" | "all");
    let fig2_metrics: Vec<&str> = match args.experiment.as_str() {
        "fig2-runtime" => vec!["runtime"],
        "fig2-probability" => vec!["probability"],
        "fig2-thrashing" => vec!["thrashing"],
        "all" => vec!["runtime", "probability", "thrashing"],
        _ => vec![],
    };
    let run_corr = matches!(args.experiment.as_str(), "fig2-correlation" | "all");

    if run_t1 {
        let rows = table1_with_jobs(args.trials, args.trials.min(20), args.jobs);
        print_table1(&rows, args.json);
        println!();
    }
    if !fig2_metrics.is_empty() {
        let cells = figure2_with_jobs(args.trials, args.jobs);
        for m in fig2_metrics {
            print_fig2(&cells, m, args.json);
            println!();
        }
    }
    if run_corr {
        let points = fig2_correlation(args.trials);
        print_correlation(&points, args.json);
    }
    if matches!(args.experiment.as_str(), "motivation" | "all") {
        let rows = motivation(&[0, 2, 4, 6, 8], 30_000);
        print_motivation(&rows, args.json);
    }
}

fn print_motivation(rows: &[MotivationRow], json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(rows).expect("serialize"));
        return;
    }
    println!("== Motivation (paper §1): cost of finding Figure 1's deadlock ==");
    println!(
        "{:>8} {:>18} {:>15} {:>18}",
        "prefix", "schedule tree", "random runs", "DeadlockFuzzer runs"
    );
    for r in rows {
        let fmt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| ">cap".into());
        println!(
            "{:>8} {:>18} {:>15} {:>18}",
            r.prefix,
            fmt(r.exhaustive_runs),
            fmt(r.random_runs),
            r.deadlockfuzzer_runs
        );
    }
    println!(
        "(exhaustive = systematic schedule exploration; DeadlockFuzzer = 1 observation \
         run + biased runs; the paper's point: schedules explode with execution length)"
    );
}
